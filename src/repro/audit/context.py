"""Context audit (paper Table 2).

Judges each publisher *contextually meaningful* for a campaign when

1. any of the publisher's keywords literally matches a campaign keyword, or
2. any of the publisher's topics is semantically similar to a campaign
   keyword, per Leacock–Chodorow similarity over the taxonomy (the
   criterion of Carrascosa et al. the paper adopts),

then reports the fraction of logged impressions that landed on meaningful
publishers, next to the fraction the vendor claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.dataset import AuditDataset
from repro.taxonomy.similarity import max_lch_similarity, similarity_threshold
from repro.util import hotpath
from repro.util.stats import Fraction2


@dataclass(frozen=True)
class ContextCriterion:
    """Tunable decision rule for "contextually meaningful".

    ``max_path_edges`` sets the LCH acceptance bar as the similarity score
    of two concepts that many taxonomy edges apart.
    """

    use_keyword_match: bool = True
    use_semantic_match: bool = True
    max_path_edges: int = 1

    def __post_init__(self) -> None:
        if not (self.use_keyword_match or self.use_semantic_match):
            raise ValueError("criterion needs at least one match rule")
        if self.max_path_edges < 0:
            raise ValueError("max_path_edges must be non-negative")


@dataclass(frozen=True)
class ContextResult:
    """Table 2 row for one campaign."""

    campaign_id: str
    audit_fraction: Fraction2       # of logged impressions
    vendor_fraction: Fraction2      # of vendor-reported impressions
    meaningful_publishers: int
    observed_publishers: int


class ContextAudit:
    """Publisher-theme relevance assessment."""

    def __init__(self, dataset: AuditDataset,
                 criterion: ContextCriterion | None = None) -> None:
        self.dataset = dataset
        self.criterion = criterion or ContextCriterion()
        self._threshold = similarity_threshold(
            dataset.lexicon.tree, self.criterion.max_path_edges)
        self._cache: dict[tuple[str, str], bool] = {}
        self._neighborhoods: dict[str, frozenset[str]] = {}

    @property
    def lch_threshold(self) -> float:
        """The LCH score a topic pair must reach under criterion 2."""
        return self._threshold

    def publisher_meaningful(self, campaign_id: str, domain: str) -> bool:
        """Is *domain* contextually meaningful for the campaign?

        Publishers absent from the directory (no vendor-assigned keywords,
        nothing to crawl) are conservatively judged not meaningful.
        """
        key = (campaign_id, domain)
        if key not in self._cache:
            self._cache[key] = self._judge(campaign_id, domain)
        return self._cache[key]

    def _judge_reference(self, campaign_id: str, domain: str) -> bool:
        """Reference judge: full LCH cross-product per pair (the oracle)."""
        campaign = self.dataset.campaigns[campaign_id]
        info = self.dataset.publisher_info(domain)
        if info is None:
            return False
        criterion = self.criterion
        if criterion.use_keyword_match:
            if any(info.matches_keyword(keyword)
                   for keyword in campaign.keywords):
                return True
        if criterion.use_semantic_match:
            lexicon = self.dataset.lexicon
            campaign_topics = lexicon.topics_of(list(campaign.keywords))
            publisher_topics = [topic for topic in info.topics
                                if topic in lexicon.tree]
            if campaign_topics and publisher_topics:
                score = max_lch_similarity(lexicon.tree, campaign_topics,
                                           publisher_topics)
                if score >= self._threshold:
                    return True
        return False

    def _judge(self, campaign_id: str, domain: str) -> bool:
        if hotpath._REFERENCE:
            return self._judge_reference(campaign_id, domain)
        campaign = self.dataset.campaigns[campaign_id]
        info = self.dataset.publisher_info(domain)
        if info is None:
            return False
        criterion = self.criterion
        if criterion.use_keyword_match:
            if any(info.matches_keyword(keyword)
                   for keyword in campaign.keywords):
                return True
        if criterion.use_semantic_match:
            # ``max LCH >= threshold`` over the topic cross-product is
            # exactly ``some pair within max_path_edges edges`` (LCH is a
            # strictly decreasing function of path length, and the
            # threshold is the score at max_path_edges), so the semantic
            # rule is one intersection against the campaign topics'
            # taxonomy neighbourhood — the tree-level memo the matching
            # engine shares — instead of an LCH cross-product per pair.
            neighborhood = self._campaign_neighborhood(campaign_id)
            if any(topic in neighborhood for topic in info.topics):
                return True
        return False

    def _campaign_neighborhood(self, campaign_id: str) -> frozenset[str]:
        """Radius-``max_path_edges`` neighbourhood of the campaign topics."""
        cached = self._neighborhoods.get(campaign_id)
        if cached is None:
            lexicon = self.dataset.lexicon
            campaign = self.dataset.campaigns[campaign_id]
            nodes: set[str] = set()
            for topic in lexicon.campaign_topics(campaign_id,
                                                 campaign.keywords):
                nodes.update(lexicon.tree.nodes_within(
                    topic, self.criterion.max_path_edges))
            cached = frozenset(nodes)
            self._neighborhoods[campaign_id] = cached
        return cached

    def assess(self, campaign_id: str) -> ContextResult:
        """The Table 2 comparison for one campaign."""
        rows = self.dataset.select(campaign_id, "domain")
        meaningful_impressions = 0
        meaningful_domains: set[str] = set()
        observed_domains: set[str] = set()
        for (domain,) in rows:
            observed_domains.add(domain)
            if self.publisher_meaningful(campaign_id, domain):
                meaningful_impressions += 1
                meaningful_domains.add(domain)
        report = self.dataset.vendor_reports.get(campaign_id)
        vendor_fraction = report.contextual if report else Fraction2(0, 0)
        if rows:
            audit_fraction = Fraction2(meaningful_impressions, len(rows))
        else:
            audit_fraction = Fraction2(0, 0)
        return ContextResult(
            campaign_id=campaign_id,
            audit_fraction=audit_fraction,
            vendor_fraction=vendor_fraction,
            meaningful_publishers=len(meaningful_domains),
            observed_publishers=len(observed_domains),
        )
