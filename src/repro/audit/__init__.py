"""The auditing methodology — the paper's core contribution.

Consumes (a) the independently collected impression dataset and (b) the
vendor's campaign reports, and produces the six quality assessments of
§4.2: brand safety, context, publisher popularity, viewability, frequency
capping and fraud exposure — plus the reconciliation of vendor reporting
against ground observations.
"""

from repro.audit.dataset import AuditDataset
from repro.audit.brand_safety import BrandSafetyAudit, VennCounts
from repro.audit.context import ContextAudit, ContextCriterion
from repro.audit.popularity import PopularityAudit, RankDistribution
from repro.audit.viewability import ViewabilityAudit
from repro.audit.frequency import FrequencyAudit, UserFrequency
from repro.audit.fraud import FraudAudit, DataCenterStats
from repro.audit.conversion import ConversionAudit, ConversionResult
from repro.audit.reconcile import ReconciliationAudit, Discrepancies
from repro.audit.report import CampaignAuditReport, full_audit
from repro.audit.export import report_to_csv, report_to_dict, report_to_json

__all__ = [
    "AuditDataset",
    "BrandSafetyAudit",
    "VennCounts",
    "ContextAudit",
    "ContextCriterion",
    "PopularityAudit",
    "RankDistribution",
    "ViewabilityAudit",
    "FrequencyAudit",
    "UserFrequency",
    "FraudAudit",
    "DataCenterStats",
    "ConversionAudit",
    "ConversionResult",
    "ReconciliationAudit",
    "Discrepancies",
    "CampaignAuditReport",
    "full_audit",
    "report_to_csv",
    "report_to_dict",
    "report_to_json",
]
