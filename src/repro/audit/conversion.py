"""Conversion audit — the paper's future work, implemented.

Joins the advertiser's first-party conversion log against the beacon
dataset (both keyed by the anonymised IP ⊕ User-Agent identity) and
reports the funnel per campaign: click-through rate, conversion ratio,
cost per conversion — and the click-fraud signal the join makes visible:
clicks from data-center identities essentially never convert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.adnetwork.conversions import ConversionEvent
from repro.audit.dataset import AuditDataset
from repro.util.stats import Fraction2


@dataclass(frozen=True)
class ConversionResult:
    """Funnel facts for one campaign."""

    campaign_id: str
    impressions: int
    clicks: int
    conversions: int
    revenue_eur: float
    spend_eur: float
    dc_clicks: int
    dc_conversions: int

    @property
    def ctr(self) -> Fraction2:
        """Clicks per logged impression."""
        return Fraction2(min(self.clicks, self.impressions),
                         self.impressions) if self.impressions \
            else Fraction2(0, 0)

    @property
    def conversion_ratio(self) -> Fraction2:
        """The paper's §2 definition: converting share of impressions."""
        return Fraction2(min(self.conversions, self.impressions),
                         self.impressions) if self.impressions \
            else Fraction2(0, 0)

    @property
    def conversions_per_click(self) -> Fraction2:
        return Fraction2(min(self.conversions, self.clicks), self.clicks) \
            if self.clicks else Fraction2(0, 0)

    @property
    def cost_per_conversion_eur(self) -> float:
        """Spend per conversion (inf when nothing converted)."""
        if self.conversions == 0:
            return float("inf")
        return self.spend_eur / self.conversions

    @property
    def dc_click_waste(self) -> Fraction2:
        """Share of clicks from data-center identities — clicks that, per
        the join, do not convert."""
        return Fraction2(self.dc_clicks, self.clicks) if self.clicks \
            else Fraction2(0, 0)


class ConversionAudit:
    """Funnel analysis over dataset + first-party conversion log."""

    def __init__(self, dataset: AuditDataset,
                 conversions: Iterable[ConversionEvent]) -> None:
        self.dataset = dataset
        self._by_campaign: dict[str, list[ConversionEvent]] = {}
        for event in conversions:
            self._by_campaign.setdefault(event.campaign_id, []).append(event)

    def assess(self, campaign_id: str) -> ConversionResult:
        """One campaign's funnel."""
        rows = self.dataset.select(campaign_id, "clicks", "is_datacenter",
                                   "user_key")
        events = self._by_campaign.get(campaign_id, [])
        report = self.dataset.vendor_reports.get(campaign_id)
        clicks = sum(row_clicks for row_clicks, _, _ in rows)
        dc_clicks = sum(row_clicks for row_clicks, is_datacenter, _ in rows
                        if is_datacenter)
        converting_keys = {event.user_key for event in events}
        dc_conversions = sum(
            1 for _, is_datacenter, user_key in rows
            if is_datacenter and user_key in converting_keys)
        return ConversionResult(
            campaign_id=campaign_id,
            impressions=len(rows),
            clicks=clicks,
            conversions=len(events),
            revenue_eur=sum(event.value_eur for event in events),
            spend_eur=(report.charged_eur - report.refunded_eur)
            if report else 0.0,
            dc_clicks=dc_clicks,
            dc_conversions=dc_conversions,
        )

    def table(self) -> list[ConversionResult]:
        """One funnel row per campaign, configuration order."""
        return [self.assess(campaign_id)
                for campaign_id in self.dataset.campaign_ids]

    def fraud_signal(self, campaign_id: str) -> float:
        """Click-without-conversion asymmetry of data-center traffic.

        Returns the DC share of clicks minus the DC share of conversions;
        values near the DC click share itself mean the hosted clicks are
        pure waste (bots click, bots never buy).
        """
        result = self.assess(campaign_id)
        dc_click_share = result.dc_click_waste.value
        dc_conversion_share = (result.dc_conversions / result.conversions
                               if result.conversions else 0.0)
        return dc_click_share - dc_conversion_share
