"""Command-line entry point: ``python -m repro``.

Runs the paper's 8-campaign experiment at a chosen world scale and prints
the requested artifacts — the full audit report by default, or any subset
of the paper's tables and figures.

Examples::

    python -m repro                         # full audit, 5 % world
    python -m repro --scale 0.12 --table 2 --table 4
    python -m repro --figure 1 --figure 3 --seed 7
    python -m repro --dump-dataset impressions.jsonl
    python -m repro --trace-json trace.json # open in Perfetto
    python -m repro --faults flaky --coverage-json coverage.json
    python -m repro explain 17              # one impression's receipt
    python -m repro bench --scale tiny      # performance harness
    python -m repro --events-jsonl events.jsonl --progress
    python -m repro report --out report.md  # markdown run report
"""

from __future__ import annotations

import argparse
import sys

from repro.audit import full_audit
from repro.experiments import figures, tables
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.config import paper_experiment
from repro.faults.plan import FaultPlan, PRESET_NAMES

_TABLES = {
    1: tables.render_table1,
    2: tables.render_table2,
    3: tables.render_table3,
    4: tables.render_table4,
}

_FIGURES = {
    1: lambda result: figures.figure1(result).render(),
    2: lambda result: figures.figure2(result).render(),
    3: lambda result: figures.figure3(result).render(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the HotNets'16 ad-campaign auditing study "
                    "(simulated) and print its tables/figures.")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="world scale, 1.0 = paper scale (default 0.05)")
    parser.add_argument("--seed", type=int, default=2016,
                        help="master seed (default 2016)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation (default 1; "
                             "results are identical for any value)")
    parser.add_argument("--table", type=int, action="append", choices=[1, 2, 3, 4],
                        default=None, metavar="N",
                        help="print Table N (repeatable)")
    parser.add_argument("--figure", type=int, action="append", choices=[1, 2, 3],
                        default=None, metavar="N",
                        help="print Figure N (repeatable)")
    parser.add_argument("--dump-dataset", metavar="PATH", default=None,
                        help="write the collected impression dataset "
                             "(anonymised) as JSONL")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full audit as JSON")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write the per-campaign audit summary as CSV")
    parser.add_argument("--metrics", action="store_true",
                        help="print the run's metrics tables to stderr")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="write the run's metrics snapshot as strict JSON")
    parser.add_argument("--trace-json", metavar="PATH", default=None,
                        help="write the impression traces as Chrome "
                             "trace_event JSON (open in Perfetto or "
                             "chrome://tracing)")
    parser.add_argument("--trace-jsonl", metavar="PATH", default=None,
                        help="write the impression traces as JSONL, one "
                             "trace per line")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault plan: a preset "
                             f"({', '.join(PRESET_NAMES)}), inline JSON, or "
                             "a JSON file path (default none; 'none' is "
                             "byte-identical to omitting the flag)")
    parser.add_argument("--coverage-json", metavar="PATH", default=None,
                        help="write the measurement-coverage ledger "
                             "(delivered/observed/deduped/quarantined/lost "
                             "per publisher and campaign) as strict JSON")
    add_telemetry_arguments(parser)
    return parser


def add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The run-telemetry flags shared by the run and report commands."""
    parser.add_argument("--events-jsonl", metavar="PATH", default=None,
                        help="write the run's structured event journal as "
                             "NDJSON (sim events are byte-identical for "
                             "any --jobs value; wall heartbeats are not)")
    parser.add_argument("--progress", action="store_true",
                        help="render live progress (shards done, workers "
                             "busy, RSS, ETA) on stderr while the "
                             "simulation runs")


#: Heartbeat cadence driving --progress / the wall event channel.
_HEARTBEAT_SECONDS = 0.5


def _telemetry_for(args):
    """(events log, progress renderer, heartbeat interval) for a run.

    All three are ``None``-ish when neither telemetry flag is set, so the
    plain path constructs the runner exactly as before.
    """
    from repro.obs.events import EventLog
    from repro.obs.progress import ProgressRenderer

    if not (args.events_jsonl or args.progress):
        return None, None, None
    events = EventLog()
    renderer = None
    if args.progress:
        renderer = ProgressRenderer()
        events.subscribe(renderer.handle)
    return events, renderer, _HEARTBEAT_SECONDS


def _write_events(events, path: str) -> None:
    from pathlib import Path

    from repro.obs.events import dumps_events_jsonl

    Path(path).write_text(dumps_events_jsonl(events.events()),
                          encoding="utf-8")
    print(f"wrote {len(events.events())} events (NDJSON) to {path}",
          file=sys.stderr)


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Reconstruct one impression's span tree and audit "
                    "verdicts from the experiment's flight recorder.")
    parser.add_argument("record_id", type=int,
                        help="collector record id (1-based; the record_id "
                             "column of --dump-dataset output)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="world scale, 1.0 = paper scale (default 0.05)")
    parser.add_argument("--seed", type=int, default=2016,
                        help="master seed (default 2016)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation")
    return parser


def _dropped_trace_message(record_id: int, metrics) -> str:
    """Why a known record has no trace: retention, with real numbers.

    The merged recorder is unbounded, so a missing trace means a *shard*
    recorder dropped it at its head/tail retention bound — the shard
    capacity and the run-wide drop counter tell the operator exactly what
    happened and how to size the recorder instead of a generic miss.
    """
    from repro.obs.trace import DEFAULT_HEAD_TRACES, DEFAULT_TAIL_TRACES

    capacity = DEFAULT_HEAD_TRACES + DEFAULT_TAIL_TRACES
    dropped = int(metrics.counter_value("trace.dropped"))
    return (f"record #{record_id}: trace dropped (recorder capacity "
            f"{capacity}, {dropped} dropped); raise the recorder "
            f"capacity or pick a record inside the head/tail window")


def run_explain(argv: list[str]) -> int:
    """The ``explain`` subcommand: one impression's auditor receipt."""
    from repro.obs.traceio import AuditVerdict, render_explain

    args = build_explain_parser().parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    print(f"Reconstructing record #{args.record_id} (seed={args.seed}, "
          f"scale={args.scale}) ...", file=sys.stderr)
    result = ParallelExperimentRunner(
        paper_experiment(seed=args.seed, scale=args.scale),
        jobs=args.jobs).run()

    record = next((candidate for candidate in result.dataset.store
                   if candidate.record_id == args.record_id), None)
    if record is None:
        print(f"record #{args.record_id} is not in the collected dataset "
              f"(it holds {len(result.dataset.store)} records at this "
              f"seed/scale)", file=sys.stderr)
        return 1
    trace = result.recorder.find_by_record(args.record_id)
    if trace is None:
        print(_dropped_trace_message(args.record_id, result.metrics),
              file=sys.stderr)
        return 1

    campaign = result.dataset.campaigns.get(record.campaign_id)
    verdicts = [
        AuditVerdict(
            audit="viewability",
            verdict="viewable (upper bound)" if record.viewable_upper_bound
            else "below 1 s exposure",
            detail=f"server-measured exposure {record.exposure_seconds:.2f}s"
                   + (", connection truncated" if record.truncated else "")),
        AuditVerdict(
            audit="fraud",
            verdict="data-center traffic" if record.is_datacenter
            else "no fraud indicator",
            detail=f"resolver stage {record.dc_stage or 'none'}, "
                   f"provider {record.provider or 'unknown'}"),
    ]
    impressions_seen = len(result.dataset.store
                           .by_user(record.campaign_id)
                           .get(record.user_key, []))
    cap = campaign.frequency_cap if campaign is not None else None
    if cap is None:
        verdicts.append(AuditVerdict(
            audit="frequency",
            verdict="uncapped",
            detail=f"user logged {impressions_seen} impression(s); no cap "
                   f"configured — the vendor applies none by default"))
    else:
        verdicts.append(AuditVerdict(
            audit="frequency",
            verdict="cap exceeded" if impressions_seen > cap
            else "within cap",
            detail=f"user logged {impressions_seen} impression(s) vs "
                   f"cap {cap}"))

    header = [
        f"  creative {record.creative_id} · {record.url}",
        f"  user key {record.user_key.replace(chr(31), ' / ')}",
    ]
    print(render_explain(trace, verdicts, header_lines=header,
                         audit_at=record.timestamp
                         + record.exposure_seconds))
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    from repro.experiments.bench import SCALE_PRESETS

    presets = ", ".join(sorted(SCALE_PRESETS))
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the experiment pipeline (serial, parallel, "
                    "and reference-baseline runs plus the masking "
                    "microbenchmark) and write a schema-validated "
                    "BENCH.json.")
    parser.add_argument("--scale", default="small",
                        help=f"world scale: a float or a preset ({presets}); "
                             f"default small")
    parser.add_argument("--seed", type=int, default=2016,
                        help="master seed (default 2016)")
    parser.add_argument("--jobs", default="2",
                        help="worker counts for the parallel runs: one "
                             "integer or a comma-separated sweep such as "
                             "1,2,4 (default 2); each value above 1 gets "
                             "its own parallel probe and a sweep entry")
    parser.add_argument("--out", metavar="PATH", default="BENCH.json",
                        help="output document path (default BENCH.json)")
    parser.add_argument("--skip-baseline", action="store_true",
                        help="skip the reference-hot-path baseline run "
                             "(faster; omits the speedup comparison)")
    parser.add_argument("--in-process", action="store_true",
                        help="run probes in this process instead of "
                             "subprocesses (faster, less isolated RSS/wall "
                             "numbers)")
    parser.add_argument("--faults", metavar="SPEC", default="none",
                        help="fault plan preset to benchmark under "
                             "(default none; e.g. flaky to measure the "
                             "retry/recovery overhead)")
    parser.add_argument("--tracemalloc", action="store_true",
                        help="also sample Python-allocation peaks per "
                             "stage (slower; recorded in the per-run "
                             "memory watermarks)")
    parser.add_argument("--profile", type=int, nargs="?", const=25,
                        default=None, metavar="N",
                        help="also cProfile the serial scenario and print "
                             "the top N functions by cumulative time "
                             "(default N=25)")
    parser.add_argument("--store-memory", action="store_true",
                        help="only measure the impression store's memory "
                             "(columnar vs reference bytes/impression at "
                             "--scale) and print the JSON result; used by "
                             "the CI memory-smoke job")
    parser.add_argument("--probe", action="store_true",
                        help=argparse.SUPPRESS)  # internal subprocess mode
    parser.add_argument("--reference", action="store_true",
                        help=argparse.SUPPRESS)  # internal: baseline probe
    return parser


def run_bench(argv: list[str]) -> int:
    """The ``bench`` subcommand: the repo's performance harness."""
    import json

    from repro.experiments import bench

    args = build_bench_parser().parse_args(argv)
    try:
        raw_jobs = [int(part) for part in str(args.jobs).split(",")
                    if part.strip()]
        jobs_values = list(bench.normalize_jobs(raw_jobs))
    except ValueError as error:
        print(f"--jobs: {error}", file=sys.stderr)
        return 2
    try:
        scale = bench.resolve_scale(args.scale)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.store_memory:
        # Measurement-only mode: run the scenario once, then weigh its
        # impression store under both backends (no timing probes).
        from repro.experiments.config import paper_experiment
        from repro.experiments.parallel import ParallelExperimentRunner

        config = paper_experiment(seed=args.seed, scale=scale)
        result = ParallelExperimentRunner(config, jobs=1).run()
        memory = bench.measure_store_memory(result.dataset.store)
        print(json.dumps(memory, sort_keys=True, allow_nan=False))
        return 0

    if args.probe:
        # Internal mode: one measurement in this (fresh) interpreter,
        # reported as a single JSON object on stdout.  The raw value is
        # the probe's worker count — normalize_jobs would fold in the
        # serial anchor, which only makes sense for sweep documents.
        if len(raw_jobs) != 1:
            print("--probe measures a single jobs value", file=sys.stderr)
            return 2
        row = bench.run_probe(args.seed, scale, jobs=raw_jobs[0],
                              reference=args.reference,
                              faults=args.faults)
        print(json.dumps(row, sort_keys=True, allow_nan=False))
        return 0

    document = bench.run_bench(
        seed=args.seed, scale=scale, jobs=jobs_values,
        include_baseline=not args.skip_baseline,
        subprocess_probes=not args.in_process,
        faults=args.faults,
        tracemalloc=args.tracemalloc,
        progress=lambda message: print(message, file=sys.stderr))
    path = bench.write_bench(document, args.out)

    serial = next(run for run in document["runs"]
                  if run["mode"] == "serial")
    lines = [
        f"serial:   {serial['wall_seconds']:.2f}s wall "
        f"({serial['warm_wall_seconds']:.2f}s warm), "
        f"{serial['impressions_per_second']:.0f} impressions/s, "
        f"peak RSS {serial['peak_rss_bytes'] / (1 << 20):.0f} MiB",
    ]
    sweep_by_jobs = {entry["jobs"]: entry
                     for entry in document.get("sweep", ())}
    for parallel in (run for run in document["runs"]
                     if run["mode"] == "parallel"):
        entry = sweep_by_jobs.get(parallel["jobs"])
        speedups = "" if entry is None else (
            f", {entry['end_to_end_speedup']:.2f}x end-to-end / "
            f"{entry['warm_speedup']:.2f}x warm vs serial")
        lines.append(
            f"parallel: {parallel['wall_seconds']:.2f}s wall "
            f"({parallel['warm_wall_seconds']:.2f}s warm, "
            f"--jobs {parallel['jobs']}), "
            f"{parallel['impressions_per_second']:.0f} impressions/s, "
            f"peak RSS {parallel['peak_rss_bytes'] / (1 << 20):.0f} MiB"
            f"{speedups}")
    comparison = document.get("comparison")
    if comparison is not None:
        lines.append(
            f"vs reference hot paths: "
            f"{comparison['end_to_end_speedup']:.2f}x end-to-end, "
            f"{comparison['impressions_per_second_gain']:.2f}x "
            f"impressions/s")
    mask = document["micro"]["mask_xor_64kib"]
    lines.append(f"mask microbench (64 KiB): {mask['speedup']:.1f}x "
                 f"({mask['optimized_mib_per_second']:.0f} vs "
                 f"{mask['reference_mib_per_second']:.0f} MiB/s)")
    print("\n".join(lines))
    print(f"wrote {path}", file=sys.stderr)

    if args.profile is not None:
        print(f"profiling serial scenario (top {args.profile} by "
              f"cumulative time) ...", file=sys.stderr)
        print(bench.profile_scenario(args.seed, scale, top=args.profile))
    return 0


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Run the experiment and write a self-contained "
                    "markdown run report (statistics, coverage, timings, "
                    "memory watermarks, event-journal summary, audit).")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="world scale, 1.0 = paper scale (default 0.05)")
    parser.add_argument("--seed", type=int, default=2016,
                        help="master seed (default 2016)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault plan: a preset "
                             f"({', '.join(PRESET_NAMES)}), inline JSON, "
                             "or a JSON file path (default none)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the report to PATH instead of stdout")
    add_telemetry_arguments(parser)
    return parser


def run_report(argv: list[str]) -> int:
    """The ``report`` subcommand: one markdown document per run."""
    from repro.experiments.report import render_run_report
    from repro.obs.memwatch import MemoryWatch

    args = build_report_parser().parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    try:
        plan = FaultPlan.resolve(args.faults)
    except (ValueError, OSError) as error:
        print(f"--faults: {error}", file=sys.stderr)
        return 2
    print(f"Reporting on the 8-campaign study (seed={args.seed}, "
          f"scale={args.scale}, jobs={args.jobs}) ...", file=sys.stderr)
    events, renderer, heartbeat = _telemetry_for(args)
    result = ParallelExperimentRunner(
        paper_experiment(seed=args.seed, scale=args.scale, faults=plan),
        jobs=args.jobs, events=events, heartbeat_interval=heartbeat).run()
    if renderer is not None:
        renderer.close()

    # The audit runs outside the runner's stages; sample it here so the
    # report's memory table covers the full command, not just the run.
    audit_watch = MemoryWatch()
    with audit_watch.stage("audit"):
        audit = full_audit(result.dataset).render()
    extra_memory = {name: {
        "spans": stats.spans,
        "rss_peak_bytes": stats.rss_peak_bytes,
        "rss_delta_bytes": stats.rss_delta_bytes,
        "tracemalloc_peak_bytes": stats.tracemalloc_peak_bytes,
    } for name, stats in audit_watch.stages().items()}
    document = render_run_report(result, audit=audit,
                                 extra_memory=extra_memory)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(document, encoding="utf-8")
        print(f"wrote run report to {args.out}", file=sys.stderr)
    else:
        print(document, end="")
    if args.events_jsonl:
        _write_events(result.events, args.events_jsonl)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return run_explain(argv[1:])
    if argv and argv[0] == "bench":
        return run_bench(argv[1:])
    if argv and argv[0] == "report":
        return run_report(argv[1:])
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    try:
        plan = FaultPlan.resolve(args.faults)
    except (ValueError, OSError) as error:
        print(f"--faults: {error}", file=sys.stderr)
        return 2
    print(f"Running the 8-campaign study (seed={args.seed}, "
          f"scale={args.scale}, jobs={args.jobs}) ...", file=sys.stderr)
    events, renderer, heartbeat = _telemetry_for(args)
    result = ParallelExperimentRunner(
        paper_experiment(seed=args.seed, scale=args.scale, faults=plan),
        jobs=args.jobs, events=events, heartbeat_interval=heartbeat).run()
    if renderer is not None:
        renderer.close()
    print(f"pageviews={result.stats['pageviews']} "
          f"delivered={result.stats['delivered']} "
          f"logged={result.stats['logged']}", file=sys.stderr)

    sections: list[str] = []
    for number in args.table or ():
        sections.append(_TABLES[number](result))
    for number in args.figure or ():
        sections.append(_FIGURES[number](result))
    if not sections:
        sections.append(full_audit(result.dataset).render())
    if plan.active:
        # The coverage ledger explains, delivery by delivery, what the
        # fault plan cost the measurement; it never prints for the
        # inactive plan so fault-free stdout stays byte-identical.
        from repro.audit.coverage import render_coverage

        sections.append(render_coverage(result.coverage))
    print("\n\n".join(sections))

    if args.dump_dataset:
        count = result.dataset.store.dump_jsonl(args.dump_dataset)
        print(f"wrote {count} impression records to {args.dump_dataset}",
              file=sys.stderr)
    if args.coverage_json:
        from pathlib import Path

        from repro.audit.coverage import coverage_to_json

        Path(args.coverage_json).write_text(
            coverage_to_json(result.coverage), encoding="utf-8")
        print(f"wrote coverage JSON to {args.coverage_json}",
              file=sys.stderr)
    if args.json or args.csv:
        from pathlib import Path

        from repro.audit.export import report_to_csv, report_to_json

        report = full_audit(result.dataset)
        if args.json:
            Path(args.json).write_text(report_to_json(report),
                                       encoding="utf-8")
            print(f"wrote audit JSON to {args.json}", file=sys.stderr)
        if args.csv:
            Path(args.csv).write_text(report_to_csv(report),
                                      encoding="utf-8")
            print(f"wrote audit CSV to {args.csv}", file=sys.stderr)
    if args.metrics:
        from repro.obs.render import render_metrics

        print(render_metrics(result.metrics), file=sys.stderr)
    if args.metrics_json:
        from pathlib import Path

        Path(args.metrics_json).write_text(result.metrics.to_json() + "\n",
                                           encoding="utf-8")
        print(f"wrote metrics JSON to {args.metrics_json}", file=sys.stderr)
    if args.trace_json:
        from pathlib import Path

        from repro.obs.traceio import dumps_chrome_trace

        Path(args.trace_json).write_text(
            dumps_chrome_trace(result.recorder.traces()) + "\n",
            encoding="utf-8")
        print(f"wrote {len(result.recorder)} traces (Chrome trace_event) "
              f"to {args.trace_json}", file=sys.stderr)
    if args.trace_jsonl:
        from pathlib import Path

        from repro.obs.traceio import dumps_trace_jsonl

        Path(args.trace_jsonl).write_text(
            dumps_trace_jsonl(result.recorder.traces()), encoding="utf-8")
        print(f"wrote {len(result.recorder)} traces (JSONL) "
              f"to {args.trace_jsonl}", file=sys.stderr)
    if args.events_jsonl:
        _write_events(result.events, args.events_jsonl)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
