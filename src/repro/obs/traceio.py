"""Trace export and rendering: Chrome ``trace_event`` JSON, JSONL, text.

Three consumers of the flight recorder live here:

* :func:`dumps_chrome_trace` — the Chrome ``trace_event`` array format
  (``{"traceEvents": [...]}``) that ``chrome://tracing`` and Perfetto
  load directly; each trace becomes one named thread so the span tree
  reads as a per-impression swimlane.
* :func:`dumps_trace_jsonl` / :func:`loads_trace_jsonl` — one trace per
  line, lossless round-trip of :class:`~repro.obs.trace.TraceRecord`.
* :func:`render_trace_tree` / :func:`render_explain` — the aligned text
  report behind ``python -m repro explain``: one impression's span tree
  plus the audit verdicts, the independent auditor's receipt.

All exports are strict JSON (``allow_nan=False``) and canonically
ordered, so byte-comparison between serial and sharded runs is a valid
equivalence test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from repro.obs.trace import SpanRecord, TraceRecord
from repro.util.tables import render_table

#: Microseconds per simulated second — trace_event timestamps are in µs.
_US = 1_000_000


def _category(name: str) -> str:
    """Event category = the span name's subsystem prefix."""
    return name.split(".", 1)[0]


def chrome_trace_events(traces: Iterable[TraceRecord]) -> list[dict]:
    """Flatten traces into Chrome ``trace_event`` dicts.

    Every trace maps to one tid under pid 1 (tids follow the canonical
    trace order), announced by a ``thread_name`` metadata event; every
    span becomes a complete ("ph": "X") event with microsecond sim-time
    stamps.  The output order is deterministic: traces in the given
    order, spans in document order.
    """
    events: list[dict] = []
    for tid, trace in enumerate(traces, start=1):
        label = f"impression {trace.impression_id}"
        if trace.record_id is not None:
            label += f" / record {trace.record_id}"
        events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": f"{label} [{trace.trace_id}]"},
        })
        for span in trace.spans:
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": _category(span.name),
                "pid": 1,
                "tid": tid,
                "ts": round(span.start * _US),
                "dur": round(span.duration * _US),
                "args": dict(span.attrs) | {
                    "trace_id": trace.trace_id,
                    "span_id": span.span_id,
                    "shard": trace.shard_scope,
                },
            })
    return events


def dumps_chrome_trace(traces: Iterable[TraceRecord]) -> str:
    """Strict-JSON Chrome trace document for chrome://tracing / Perfetto."""
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(traces),
    }
    return json.dumps(document, sort_keys=True, allow_nan=False,
                      separators=(",", ":"))


# -- JSONL round-trip ------------------------------------------------- #

def _trace_to_dict(trace: TraceRecord) -> dict:
    return {
        "trace_id": trace.trace_id,
        "shard_scope": trace.shard_scope,
        "impression_id": trace.impression_id,
        "campaign_id": trace.campaign_id,
        "record_id": trace.record_id,
        "spans": [
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "attrs": [list(pair) for pair in span.attrs],
            }
            for span in trace.spans
        ],
    }


def _trace_from_dict(payload: dict) -> TraceRecord:
    return TraceRecord(
        trace_id=payload["trace_id"],
        shard_scope=payload["shard_scope"],
        impression_id=payload["impression_id"],
        campaign_id=payload["campaign_id"],
        record_id=payload["record_id"],
        spans=tuple(
            SpanRecord(
                span_id=span["span_id"],
                parent_id=span["parent_id"],
                name=span["name"],
                start=span["start"],
                end=span["end"],
                attrs=tuple((key, value) for key, value in span["attrs"]),
            )
            for span in payload["spans"]
        ),
    )


def dumps_trace_jsonl(traces: Iterable[TraceRecord]) -> str:
    """One strict-JSON trace per line, in the given (canonical) order."""
    lines = [json.dumps(_trace_to_dict(trace), sort_keys=True,
                        allow_nan=False, separators=(",", ":"))
             for trace in traces]
    return "\n".join(lines) + ("\n" if lines else "")


def loads_trace_jsonl(text: str) -> tuple[TraceRecord, ...]:
    """Inverse of :func:`dumps_trace_jsonl`."""
    return tuple(_trace_from_dict(json.loads(line))
                 for line in text.splitlines() if line.strip())


# -- text rendering ---------------------------------------------------- #

def _format_offset(seconds: float) -> str:
    if abs(seconds) < 1e-9:
        return "+0"
    return f"+{seconds:.3f}s"


def _format_duration(seconds: float) -> str:
    if seconds <= 0:
        return "·"
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.3f}s"


def render_trace_tree(trace: TraceRecord) -> str:
    """The span tree as aligned text, offsets relative to the root start.

    Guide rails follow the parent/child structure; attributes render as
    ``key=value`` pairs so one impression's whole story fits one screen.
    """
    origin = trace.root.start
    rows: list[tuple[str, str, str, str]] = []

    def walk(span: SpanRecord, prefix: str, is_last: bool,
             is_root: bool) -> None:
        if is_root:
            label = span.name
            child_prefix = ""
        else:
            branch = "`-- " if is_last else "|-- "
            label = prefix + branch + span.name
            child_prefix = prefix + ("    " if is_last else "|   ")
        attrs = " ".join(f"{key}={value}" for key, value in span.attrs)
        rows.append((label, _format_offset(span.start - origin),
                     _format_duration(span.duration), attrs))
        children = trace.children_of(span.span_id)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(trace.root, "", True, True)
    return render_table(["Span", "Start", "Duration", "Attributes"], rows,
                        right_align=(1, 2))


@dataclass(frozen=True)
class AuditVerdict:
    """One audit's answer for one impression, with its evidence."""

    audit: str
    verdict: str
    detail: str


def with_audit_spans(trace: TraceRecord, verdicts: Sequence[AuditVerdict],
                     at: float) -> TraceRecord:
    """Append ``audit.classify`` spans for post-hoc audit verdicts.

    The audits are pure functions of the sealed dataset, so their spans
    are synthesised at explain time (still deterministic) rather than
    recorded during the run.
    """
    spans = list(trace.spans)
    next_id = max((span.span_id for span in spans), default=-1) + 1
    parent = trace.root.span_id if spans else None
    for verdict in verdicts:
        spans.append(SpanRecord(
            span_id=next_id, parent_id=parent, name="audit.classify",
            start=at, end=at,
            attrs=(("audit", verdict.audit), ("verdict", verdict.verdict))))
        next_id += 1
    return replace(trace, spans=tuple(spans))


def render_explain(trace: TraceRecord,
                   verdicts: Sequence[AuditVerdict] = (),
                   header_lines: Sequence[str] = (),
                   audit_at: Optional[float] = None) -> str:
    """The auditor's receipt: header, span tree, verdict table.

    When *verdicts* are given they are folded into the tree as
    ``audit.classify`` spans (at *audit_at*, default the trace's last
    span end) and tabulated below it.
    """
    shown = trace
    if verdicts:
        when = audit_at if audit_at is not None \
            else max(span.end for span in trace.spans)
        shown = with_audit_spans(trace, verdicts, at=when)

    lines = [
        f"Impression receipt — trace {trace.trace_id}",
        f"  impression #{trace.impression_id}"
        + (f" · record #{trace.record_id}" if trace.record_id is not None
           else " · no collector record"),
        f"  campaign {trace.campaign_id} · shard {trace.shard_scope}",
    ]
    lines.extend(header_lines)
    lines.append("")
    lines.append(render_trace_tree(shown))
    if verdicts:
        lines.append("")
        lines.append(render_table(
            ["Audit", "Verdict", "Evidence"],
            [(verdict.audit, verdict.verdict, verdict.detail)
             for verdict in verdicts],
            title="Audit verdicts"))
    return "\n".join(lines)
