"""Deterministic impression-lifecycle tracing.

The paper's methodology is *following one impression end to end*: the ad
network decides to serve, the creative renders, the beacon phones home
over WebSocket, the collector commits a row, and the audits pass verdicts
on that row.  :mod:`repro.obs.metrics` made each stage countable; this
module makes each impression *narratable* — every delivered impression
owns a trace of typed spans (``auction.decide``, ``pacing.gate``,
``creative.serve``, ``beacon.render``, ``transport.connect``,
``ws.frame``, ``collector.ingest``, ``enrich.geo``, ``audit.classify``)
that reconstructs exactly which chain of events produced (or failed to
produce) its collector record.

The same two rules that keep the metrics reproducible apply here:

* **Determinism.**  A trace id is a pure function of (seed, shard scope,
  impression id) via :func:`repro.util.hashing.stable_hash` — never of
  wall-clock entropy — and every span instant comes from the simulated
  clock domain (pageview timestamps, server-side connection instants).
  Wall-domain timings stay in :mod:`repro.obs.timing`, outside this
  module entirely.

* **Canonical merge.**  Each shard keeps its traces in a bounded
  head/tail-sampled :class:`FlightRecorder` whose retention is a pure
  function of the shard's own commit sequence; the experiment merge
  folds the per-shard trace sets in canonical plan order, exactly like
  :class:`~repro.obs.metrics.MetricsSnapshot`.  Serial and ``--jobs N``
  runs therefore retain the identical trace set.

Depends only on the standard library and ``repro.util.hashing``; every
other package may import ``repro.obs.trace`` without creating a cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.util.hashing import stable_hash

#: Default flight-recorder bounds: per shard, the first ``head`` traces
#: are pinned and the last ``tail`` ride a ring buffer; whatever falls in
#: between at higher scales is dropped (and counted).
DEFAULT_HEAD_TRACES = 2048
DEFAULT_TAIL_TRACES = 2048


class TraceError(RuntimeError):
    """Misuse of the tracing API (unbalanced spans, duplicate starts)."""


def trace_id_for(seed: int, scope: str, impression_id: int) -> str:
    """Stable 16-hex trace id for one impression.

    A pure function of the experiment seed, the shard's scope string and
    the impression's shard-local id — the same impression gets the same
    trace id in every run at that seed, serial or parallel, which is what
    lets ``python -m repro explain`` find it again.
    """
    return format(stable_hash(str(seed), scope, str(impression_id),
                              bits=64), "016x")


def _attr_str(value: object) -> str:
    """Deterministic string form for span attribute values."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format(value, ".6g")
    return str(value)


def _freeze_attrs(attrs: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple((key, _attr_str(value)) for key, value in attrs.items())


@dataclass(frozen=True)
class SpanRecord:
    """One typed span of a trace (an instant when ``start == end``).

    Span ids are assigned in begin order within their trace, so sorting
    by ``span_id`` recovers document order; ``parent_id`` is ``None``
    only for the root span.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    attrs: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TraceError(
                f"span {self.name} ends before it starts "
                f"({self.end} < {self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attr(self, key: str) -> Optional[str]:
        """Value of one attribute (None when absent)."""
        for name, value in self.attrs:
            if name == key:
                return value
        return None


@dataclass(frozen=True)
class TraceRecord:
    """One impression's complete, immutable span tree.

    ``impression_id`` and ``record_id`` are shard-local at commit time;
    the experiment merge rewrites both with the canonical global offsets
    (the same renumbering the impression list and the store undergo), so
    a merged trace is addressable by the ids the auditor actually sees.
    """

    trace_id: str
    shard_scope: str
    impression_id: int
    campaign_id: str
    record_id: Optional[int] = None
    spans: tuple[SpanRecord, ...] = ()

    @property
    def root(self) -> SpanRecord:
        if not self.spans:
            raise TraceError(f"trace {self.trace_id} has no spans")
        return self.spans[0]

    def children_of(self, span_id: Optional[int]) -> list[SpanRecord]:
        """Direct children of one span, in document order."""
        return [span for span in self.spans if span.parent_id == span_id]

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [span for span in self.spans if span.name == name]


@dataclass
class _OpenSpan:
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    attrs: tuple[tuple[str, str], ...]


class Tracer:
    """Builds one pending trace at a time and commits it to a recorder.

    The shard loop drives the lifecycle: :meth:`start` opens the pending
    trace at the pageview, instrumented components add spans/events while
    the impression flows through them, and the loop either
    :meth:`commit`\\ s (impression delivered) or :meth:`abandon`\\ s
    (pageview produced nothing).  Every span method is a silent no-op
    while no trace is pending, so instrumented components behave
    identically when constructed standalone.
    """

    def __init__(self, recorder: "FlightRecorder | None" = None,
                 seed: int = 0, scope: str = "") -> None:
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.seed = seed
        self.scope = scope
        self._spans: list[SpanRecord] = []
        self._stack: list[_OpenSpan] = []
        self._next_span_id = 0
        self._active = False
        self._now = 0.0
        self._last_end = 0.0
        self._impression_id: Optional[int] = None
        self._campaign_id = ""
        self._record_id: Optional[int] = None

    # -- lifecycle ----------------------------------------------------- #

    @property
    def active(self) -> bool:
        """Is a trace pending?"""
        return self._active

    @property
    def now(self) -> float:
        """The last simulated instant an instrumentation point reported."""
        return self._now

    def advance_to(self, instant: float) -> None:
        """Move the tracer's notion of sim-time forward (never back)."""
        if instant > self._now:
            self._now = instant

    def start(self, name: str, at: float, **attrs: object) -> None:
        """Open the pending trace with its root span."""
        if self._active:
            raise TraceError("a trace is already pending; commit or "
                             "abandon it before starting another")
        self._active = True
        self._now = at
        self._last_end = at
        self._push(name, at, attrs)

    def set_impression(self, impression_id: int, campaign_id: str) -> None:
        """Record the impression identity the pending trace belongs to."""
        if not self._active:
            return
        self._impression_id = impression_id
        self._campaign_id = campaign_id

    def set_record(self, record_id: int) -> None:
        """Record the collector row the pending trace produced."""
        if self._active:
            self._record_id = record_id

    def commit(self, end: Optional[float] = None) -> Optional[TraceRecord]:
        """Seal the pending trace and hand it to the flight recorder.

        Any spans still open (including the root) are closed at *end*,
        which defaults to the latest span end observed.  Requires the
        impression identity to have been set — a trace is committed only
        once an impression actually exists.
        """
        if not self._active:
            return None
        if self._impression_id is None:
            raise TraceError("cannot commit a trace without an impression "
                             "identity; call set_impression first")
        close_at = end if end is not None else self._last_end
        while self._stack:
            self._pop(max(close_at, self._stack[-1].start))
        trace = TraceRecord(
            trace_id=trace_id_for(self.seed, self.scope, self._impression_id),
            shard_scope=self.scope,
            impression_id=self._impression_id,
            campaign_id=self._campaign_id,
            record_id=self._record_id,
            spans=tuple(sorted(self._spans, key=lambda span: span.span_id)),
        )
        self._reset()
        self.recorder.record(trace)
        return trace

    def abandon(self) -> None:
        """Discard the pending trace (the pageview produced nothing)."""
        self._reset()

    def _reset(self) -> None:
        self._spans = []
        self._stack = []
        self._next_span_id = 0
        self._active = False
        self._impression_id = None
        self._campaign_id = ""
        self._record_id = None

    # -- span recording ------------------------------------------------ #

    def begin(self, name: str, at: float, **attrs: object) -> None:
        """Open a nested span; children attach until :meth:`end`."""
        if not self._active:
            return
        self.advance_to(at)
        self._push(name, at, attrs)

    def end(self, at: float) -> None:
        """Close the innermost open span (the root only closes at commit)."""
        if not self._active or len(self._stack) <= 1:
            return
        self.advance_to(at)
        self._pop(at)

    def span(self, name: str, start: float, end: float,
             **attrs: object) -> None:
        """Record one complete span under the innermost open span."""
        if not self._active:
            return
        self.advance_to(end)
        self._last_end = max(self._last_end, end)
        parent = self._stack[-1].span_id if self._stack else None
        self._spans.append(SpanRecord(
            span_id=self._take_id(), parent_id=parent, name=name,
            start=start, end=end, attrs=_freeze_attrs(attrs)))

    def event(self, name: str, at: float, **attrs: object) -> None:
        """Record an instantaneous span."""
        self.span(name, at, at, **attrs)

    def _push(self, name: str, at: float,
              attrs: dict[str, object]) -> None:
        parent = self._stack[-1].span_id if self._stack else None
        self._stack.append(_OpenSpan(
            span_id=self._take_id(), parent_id=parent, name=name,
            start=at, attrs=_freeze_attrs(attrs)))

    def _pop(self, at: float) -> None:
        open_span = self._stack.pop()
        end = max(at, open_span.start)
        self._last_end = max(self._last_end, end)
        self._spans.append(SpanRecord(
            span_id=open_span.span_id, parent_id=open_span.parent_id,
            name=open_span.name, start=open_span.start, end=end,
            attrs=open_span.attrs))

    def _take_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id


class NullTracer(Tracer):
    """A tracer that records nothing; the default for standalone parts.

    Every method is a no-op, so ``tracer or NULL_TRACER`` keeps the
    instrumentation sites branch-free.
    """

    def __init__(self) -> None:
        super().__init__(recorder=FlightRecorder(head=0, tail=0))

    def start(self, name: str, at: float, **attrs: object) -> None:
        return

    def set_impression(self, impression_id: int, campaign_id: str) -> None:
        return

    def set_record(self, record_id: int) -> None:
        return

    def commit(self, end: Optional[float] = None) -> Optional[TraceRecord]:
        return None

    def begin(self, name: str, at: float, **attrs: object) -> None:
        return

    def end(self, at: float) -> None:
        return

    def span(self, name: str, start: float, end: float,
             **attrs: object) -> None:
        return

    def event(self, name: str, at: float, **attrs: object) -> None:
        return

    def advance_to(self, instant: float) -> None:
        return


@dataclass
class FlightRecorder:
    """Bounded head/tail trace retention — the in-memory black box.

    The first ``head`` committed traces are pinned; after that the last
    ``tail`` ride a ring buffer and everything squeezed out in between is
    dropped (and counted).  Retention is a pure function of the commit
    sequence, so per-shard recorders keep identical trace sets however
    the shards are scheduled.  ``head=None`` disables the bound — the
    merged experiment recorder uses that, since its input is already the
    concatenation of bounded per-shard sets in canonical plan order.
    """

    head: Optional[int] = DEFAULT_HEAD_TRACES
    tail: int = DEFAULT_TAIL_TRACES
    committed: int = 0
    dropped: int = 0
    _head: list[TraceRecord] = field(default_factory=list)
    _tail: deque = field(default_factory=deque)
    #: Lazy record_id → retained position cache; positions are stable
    #: between commits (head is append-only, tail only shifts on the
    #: evictions a commit causes), and any commit invalidates the cache.
    _record_index: Optional[dict] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.head is not None and self.head < 0:
            raise ValueError("head must be non-negative (or None)")
        if self.tail < 0:
            raise ValueError("tail must be non-negative")
        self._tail = deque(self._tail, maxlen=self.tail or None)

    def record(self, trace: TraceRecord) -> None:
        """Retain one committed trace under the head/tail policy."""
        self.committed += 1
        self._record_index = None
        if self.head is None or len(self._head) < self.head:
            self._head.append(trace)
            return
        if self.tail == 0:
            self.dropped += 1
            return
        if len(self._tail) == self.tail:
            self.dropped += 1
        self._tail.append(trace)

    def absorb(self, traces: Iterable[TraceRecord]) -> None:
        """Fold already-committed traces in, in the iteration order given."""
        for trace in traces:
            self.record(trace)

    def __len__(self) -> int:
        return len(self._head) + len(self._tail)

    def traces(self) -> tuple[TraceRecord, ...]:
        """Every retained trace, in commit order."""
        return tuple(self._head) + tuple(self._tail)

    # -- lookup -------------------------------------------------------- #

    def find(self, trace_id: str) -> Optional[TraceRecord]:
        for trace in self.traces():
            if trace.trace_id == trace_id:
                return trace
        return None

    def _positions(self) -> dict:
        if self._record_index is None:
            self._record_index = {
                trace.record_id: position
                for position, trace in enumerate(self.traces())
                if trace.record_id is not None}
        return self._record_index

    def _at(self, position: int) -> TraceRecord:
        if position < len(self._head):
            return self._head[position]
        return self._tail[position - len(self._head)]

    def _set_at(self, position: int, trace: TraceRecord) -> None:
        if position < len(self._head):
            self._head[position] = trace
        else:
            self._tail[position - len(self._head)] = trace

    def find_by_record(self, record_id: int) -> Optional[TraceRecord]:
        """The trace that produced one collector record."""
        position = self._positions().get(record_id)
        return None if position is None else self._at(position)

    def find_by_impression(self, impression_id: int) -> Optional[TraceRecord]:
        """The trace of one delivered impression."""
        for trace in self.traces():
            if trace.impression_id == impression_id:
                return trace
        return None

    # -- post-hoc annotation ------------------------------------------- #

    def annotate(self, record_id: int, name: str, at: float,
                 **attrs: object) -> bool:
        """Append a span to the retained trace of one record.

        Offline pipeline stages (enrichment runs after the merge, on the
        assembled store) use this to extend committed traces; the span
        lands as a child of the root.  Returns False when the record's
        trace was never retained.
        """
        position = self._positions().get(record_id)
        if position is None:
            return False
        trace = self._at(position)
        span = SpanRecord(
            span_id=max(span.span_id for span in trace.spans) + 1
            if trace.spans else 0,
            parent_id=trace.root.span_id if trace.spans else None,
            name=name, start=at, end=at, attrs=_freeze_attrs(attrs))
        self._set_at(position, replace(trace, spans=trace.spans + (span,)))
        return True


#: Shared do-nothing tracer for components built without one.
NULL_TRACER = NullTracer()
