"""Structured run-telemetry events: the pipeline's append-only journal.

Metrics (:mod:`repro.obs.metrics`) answer "how much", traces
(:mod:`repro.obs.trace`) answer "what happened to one impression" — this
module answers "what happened to the *run*": shards planned, started,
recovered and merged, faults injected, beacon retries, quarantined
frames, the coverage ledger reconciling.  Every event is a small frozen
value object, and the log exports as strict-JSON NDJSON (one event per
line, ``--events-jsonl``) so a third party can replay the run's history
without our code.

The log carries two channels, split by the same domain rule the metrics
layer uses:

* **sim** events are facts about the simulated world, stamped with sim
  instants and emitted by deterministic code paths only.  They are a
  pure function of (config, seed): the merged sim channel is
  byte-identical between the serial runner and ``--jobs N`` because
  per-shard events are absorbed in canonical plan order, exactly like
  metrics snapshots and flight-recorder traces.
* **wall** events are facts about the host — the runner's heartbeats
  (worker utilization, queue depth, merge-buffer depth, RSS, ETA).  They
  are explicitly excluded from the equivalence contract and carry
  wall-clock offsets in ``at``.

Each channel numbers its events with its own ``seq`` counter, so a burst
of wall heartbeats can never perturb the sim channel's numbering.

No dependencies beyond the standard library and the domain constants of
:mod:`repro.obs.metrics` — every other ``repro`` package may import this
one.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional

from repro.obs.metrics import SIM, WALL

#: Event document schema; every NDJSON line carries it so a single line
#: is self-describing and line-wise validatable.
EVENTS_SCHEMA = "repro-events/1"

_DOMAINS = (SIM, WALL)

#: Per-shard retention bound: a shard keeps this many events before the
#: log starts dropping (and counting) the excess.  Sized far above what
#: a shard emits in practice; the bound exists so a pathological fault
#: plan cannot make event volume scale with pageviews.
DEFAULT_SHARD_EVENT_CAPACITY = 4096


class EventSchemaError(ValueError):
    """An event (or its serialised form) violates the schema."""


def _freeze_attrs(attrs: dict) -> tuple:
    """Validate and freeze attrs; only JSON scalars may ride an event."""
    frozen = []
    for key, value in attrs.items():
        if not isinstance(value, (str, int, float, bool)):
            raise EventSchemaError(
                f"event attr {key!r} must be a JSON scalar "
                f"(str/int/float/bool), got {type(value).__name__}")
        frozen.append((key, value))
    return tuple(frozen)


def _finite(value):
    """JSON-safe number: None for inf/-inf/nan, the value otherwise."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class Event:
    """One run-telemetry event.

    ``at`` is a sim-clock instant for sim-domain events and a wall-clock
    offset (seconds since the run started) for wall-domain ones.  ``seq``
    numbers events *within their domain*, in emission order.
    """

    seq: int
    domain: str
    name: str
    at: float
    scope: str = ""
    attrs: tuple[tuple[str, object], ...] = ()

    def attr(self, key: str, default=None):
        for attr_key, value in self.attrs:
            if attr_key == key:
                return value
        return default

    def to_dict(self) -> dict:
        """Strict-JSON-safe dictionary (non-finite floats become None)."""
        return {
            "schema": EVENTS_SCHEMA,
            "seq": self.seq,
            "domain": self.domain,
            "name": self.name,
            "at": _finite(self.at),
            "scope": self.scope,
            "attrs": {key: _finite(value) for key, value in self.attrs},
        }


class EventLog:
    """An append-only, bounded, mergeable event journal.

    One per shard (bounded at :data:`DEFAULT_SHARD_EVENT_CAPACITY`) and
    one unbounded instance per run; the run log :meth:`absorb`\\ s each
    shard's events in canonical plan order, renumbering ``seq`` per
    domain so the merged sim channel is contiguous — and byte-identical
    however the shards were scheduled.

    Listeners registered with :meth:`subscribe` see every emission (even
    ones the capacity bound drops), which is how the live progress
    renderer rides the wall channel without the runner knowing about it.
    """

    def __init__(self, scope: str = "",
                 capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative or None")
        self.scope = scope
        self.capacity = capacity
        self.dropped = 0
        self._events: list[Event] = []
        self._seq = {SIM: 0, WALL: 0}
        self._listeners: list[Callable[[Event], None]] = []

    def __len__(self) -> int:
        return len(self._events)

    def subscribe(self, listener: Callable[[Event], None]) -> None:
        """Register a callable invoked with every emitted event."""
        self._listeners.append(listener)

    # -- emission ------------------------------------------------------- #

    def emit(self, name: str, at: float, domain: str = SIM,
             scope: Optional[str] = None, **attrs) -> Event:
        """Append one event; returns it (even if the bound dropped it)."""
        if domain not in _DOMAINS:
            raise EventSchemaError(f"domain must be one of {_DOMAINS}: "
                                   f"{domain!r}")
        if not name:
            raise EventSchemaError("event name must be non-empty")
        event = Event(seq=self._seq[domain], domain=domain, name=name,
                      at=float(at),
                      scope=self.scope if scope is None else scope,
                      attrs=_freeze_attrs(attrs))
        self._seq[domain] += 1
        self._append(event)
        return event

    def _append(self, event: Event) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
        else:
            self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def absorb(self, events: Iterable[Event], dropped: int = 0) -> None:
        """Fold another log's events in, renumbering ``seq`` per domain.

        Callers MUST absorb shard logs in canonical plan order — the same
        rule the metrics and trace merges follow — which is what makes
        the merged sim channel independent of scheduling.
        """
        for event in events:
            renumbered = replace(event, seq=self._seq[event.domain])
            self._seq[event.domain] += 1
            self._append(renumbered)
        self.dropped += dropped

    # -- access --------------------------------------------------------- #

    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def sim_events(self) -> tuple[Event, ...]:
        """The deterministic channel: identical serial vs parallel."""
        return tuple(e for e in self._events if e.domain == SIM)

    def wall_events(self) -> tuple[Event, ...]:
        """The host channel (heartbeats): excluded from equivalence."""
        return tuple(e for e in self._events if e.domain == WALL)


class _NullEventLog(EventLog):
    """Shared no-op log: components default to it when handed no log."""

    def emit(self, name: str, at: float, domain: str = SIM,
             scope: Optional[str] = None, **attrs) -> Event:
        # Validate nothing, store nothing, notify nobody: the null log
        # keeps un-instrumented call sites at zero cost.
        return None  # type: ignore[return-value]

    def absorb(self, events: Iterable[Event], dropped: int = 0) -> None:
        pass

    def subscribe(self, listener: Callable[[Event], None]) -> None:
        raise EventSchemaError("cannot subscribe to the null event log")


#: The shared no-op log (analogous to ``NULL_TRACER``/``NULL_INJECTOR``).
NULL_EVENTS = _NullEventLog()


# ---------------------------------------------------------------------- #
# export / validation
# ---------------------------------------------------------------------- #


def dumps_events_jsonl(events: Iterable[Event]) -> str:
    """NDJSON export: one strict-JSON object per line, sorted keys."""
    lines = [json.dumps(event.to_dict(), sort_keys=True, allow_nan=False)
             for event in events]
    return "".join(line + "\n" for line in lines)


def validate_event_dict(obj) -> list[str]:
    """Structural validation of one decoded event line; returns problems."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"event must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != EVENTS_SCHEMA:
        problems.append(f"schema must be {EVENTS_SCHEMA!r}: "
                        f"{obj.get('schema')!r}")
    seq = obj.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        problems.append(f"seq must be a non-negative integer: {seq!r}")
    if obj.get("domain") not in _DOMAINS:
        problems.append(f"domain must be one of {_DOMAINS}: "
                        f"{obj.get('domain')!r}")
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"name must be a non-empty string: {name!r}")
    at = obj.get("at")
    if at is not None and (isinstance(at, bool)
                           or not isinstance(at, (int, float))):
        problems.append(f"at must be a number or null: {at!r}")
    if not isinstance(obj.get("scope"), str):
        problems.append(f"scope must be a string: {obj.get('scope')!r}")
    attrs = obj.get("attrs")
    if not isinstance(attrs, dict):
        problems.append(f"attrs must be an object: {attrs!r}")
    else:
        for key, value in attrs.items():
            if value is not None and not isinstance(value,
                                                    (str, int, float, bool)):
                problems.append(f"attrs[{key!r}] must be a JSON scalar "
                                f"or null: {value!r}")
    return problems


def validate_events_jsonl(text: str) -> int:
    """Validate a full NDJSON export line by line; returns the line count.

    Raises :class:`EventSchemaError` naming the first offending line —
    strict by design, like the bench and coverage validators: a telemetry
    export that fails validation should fail its writer, not degrade.
    """
    count = 0
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            raise EventSchemaError(f"line {line_number}: blank line in "
                                   f"events NDJSON")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            raise EventSchemaError(
                f"line {line_number}: not valid JSON: {error}") from error
        problems = validate_event_dict(obj)
        if problems:
            raise EventSchemaError(f"line {line_number}: "
                                   + "; ".join(problems))
        count += 1
    return count
