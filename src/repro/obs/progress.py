"""Live progress rendering for the runner's wall-domain heartbeats.

The runners emit ``runner.heartbeat`` events on the event log's wall
channel (worker utilization, queue depth, merge-buffer depth, RSS, ETA);
this module turns that stream into a human-facing progress line.  The
renderer is a plain event-log listener — the runner never knows whether
anyone is watching, which keeps the telemetry layer one-directional.

On a TTY the line redraws in place (carriage return, no newline); on a
pipe it degrades to one plain line per heartbeat so logs stay readable.
"""

from __future__ import annotations

import sys

from repro.obs.events import Event
from repro.obs.metrics import WALL

#: Width of the progress bar's fill region, in characters.
_BAR_WIDTH = 20


def _format_eta(seconds: float) -> str:
    if seconds < 0:
        return "--"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    return f"{minutes}m{rest:02d}s"


def format_heartbeat(event: Event) -> str:
    """One heartbeat event -> one progress line (no trailing newline)."""
    done = int(event.attr("shards_done", 0))
    total = max(1, int(event.attr("shards_total", 1)))
    filled = int(_BAR_WIDTH * min(done, total) / total)
    bar = "#" * filled + "-" * (_BAR_WIDTH - filled)
    parts = [f"[{bar}] {done}/{total} shards"]
    running = event.attr("running")
    if running is not None:
        parts.append(f"{int(running)} running")
    queued = event.attr("queued")
    if queued:
        parts.append(f"{int(queued)} queued")
    buffered = event.attr("merge_buffer")
    if buffered:
        parts.append(f"buf {int(buffered)}")
    rss = event.attr("rss_bytes", 0)
    if rss:
        parts.append(f"rss {rss / (1 << 20):.0f} MiB")
    eta = event.attr("eta_seconds")
    if eta is not None:
        parts.append(f"eta {_format_eta(float(eta))}")
    return " · ".join(parts)


class ProgressRenderer:
    """Renders heartbeat events as a live progress line on *stream*.

    Subscribe its :meth:`handle` to an :class:`~repro.obs.events.EventLog`
    and call :meth:`close` when the run finishes (finishes the in-place
    line with a newline on TTYs; a no-op otherwise).
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_width = 0
        self._rendered = 0

    def handle(self, event: Event) -> None:
        if event.domain != WALL or event.name != "runner.heartbeat":
            return
        line = format_heartbeat(event)
        self._rendered += 1
        if self._tty:
            padding = " " * max(0, self._last_width - len(line))
            self.stream.write("\r" + line + padding)
            self._last_width = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """End the in-place line (call once, after the run completes)."""
        if self._tty and self._rendered:
            self.stream.write("\n")
            self.stream.flush()
