"""Deterministic metrics: counters, gauges, fixed-edge histograms.

The pipeline's own measurement layer.  The paper's contribution is an
*independent count* that can be reconciled against the vendor's report;
this module gives our collector/auction/audit pipeline the same property
— every stage counts what it did, and a dropped frame or a silently
clamped bucket shows up as a counter instead of a silent table
divergence.

Two hard rules keep the metrics as reproducible as the experiment
itself:

* **Domain separation.**  Every instrument lives in one of two domains:
  ``sim`` (facts about the simulated world — frames decoded, bids
  evaluated, spend) or ``wall`` (facts about the host machine — decode
  wall time).  Sim-domain metrics are a pure function of (config, seed)
  and are byte-identical between serial and parallel runs; wall-domain
  metrics are explicitly excluded from that contract.  Nothing in the
  sim domain may ever read ``time.time()`` or ``time.perf_counter()``.

* **Canonical merge.**  A :class:`MetricsSnapshot` is an immutable,
  name-sorted projection of a registry, and :func:`merge_snapshots`
  folds any number of them with commutative reductions (sum for
  counters and histograms, max for gauges) — exactly the contract
  :func:`repro.adnetwork.reporting.merge_aggregates` follows, so the
  shard merge produces identical metrics however the shards were
  scheduled.

No dependencies beyond the standard library, and none on the rest of
``repro`` — every other package may import ``repro.obs``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

#: The two metric domains (see module docstring).
SIM = "sim"
WALL = "wall"
_DOMAINS = (SIM, WALL)


class MetricsError(ValueError):
    """Inconsistent instrument registration or snapshot merge."""


def _check_name(name: str) -> None:
    if not name or any(ch.isspace() for ch in name):
        raise MetricsError(f"metric names must be non-empty and "
                           f"whitespace-free: {name!r}")


def _check_domain(domain: str) -> None:
    if domain not in _DOMAINS:
        raise MetricsError(f"domain must be one of {_DOMAINS}: {domain!r}")


class Counter:
    """A monotonically increasing count (int or float, e.g. EUR spend)."""

    __slots__ = ("name", "domain", "help", "value")

    def __init__(self, name: str, domain: str = SIM, help: str = "") -> None:
        self.name = name
        self.domain = domain
        self.help = help
        self.value: float = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value; merges as the maximum across snapshots."""

    __slots__ = ("name", "domain", "help", "value")

    def __init__(self, name: str, domain: str = SIM, help: str = "") -> None:
        self.name = name
        self.domain = domain
        self.help = help
        self.value: float = 0.0

    def set(self, value: "int | float") -> None:
        self.value = value


class Histogram:
    """Fixed-edge histogram with an explicit overflow bucket.

    ``edges`` are inclusive upper bounds: bucket *i* holds values
    ``<= edges[i]`` (and above ``edges[i-1]``); values beyond the last
    edge land in the dedicated overflow bucket rather than being
    silently clamped.  Edges are fixed at registration so histograms
    from different shards are always mergeable bucket-for-bucket.
    """

    __slots__ = ("name", "domain", "help", "edges", "counts", "overflow",
                 "total", "sum")

    def __init__(self, name: str, edges: Sequence[float],
                 domain: str = SIM, help: str = "") -> None:
        if not edges:
            raise MetricsError(f"histogram {name} needs at least one edge")
        ordered = tuple(float(edge) for edge in edges)
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            raise MetricsError(
                f"histogram {name} edges must be strictly increasing")
        self.name = name
        self.domain = domain
        self.help = help
        self.edges = ordered
        self.counts = [0] * len(ordered)
        self.overflow = 0
        self.total = 0
        self.sum: float = 0.0

    def observe(self, value: "int | float") -> None:
        self.total += 1
        self.sum += value
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable, mergeable projection of one :class:`Histogram`."""

    name: str
    domain: str
    edges: tuple[float, ...]
    counts: tuple[int, ...]
    overflow: int
    total: int
    sum: float


@dataclass(frozen=True)
class MetricsSnapshot:
    """Name-sorted, immutable projection of a registry.

    Designed to cross a process boundary (plain frozen dataclasses of
    tuples) and to merge deterministically — the shard runners ship one
    per shard and the experiment merge folds them in canonical plan
    order, mirroring ``ReportAggregate``.
    """

    counters: tuple[tuple[str, str, float], ...] = ()
    gauges: tuple[tuple[str, str, float], ...] = ()
    histograms: tuple[HistogramSnapshot, ...] = ()

    def restrict(self, domain: str) -> "MetricsSnapshot":
        """The snapshot limited to one domain's instruments."""
        _check_domain(domain)
        return MetricsSnapshot(
            counters=tuple(entry for entry in self.counters
                           if entry[1] == domain),
            gauges=tuple(entry for entry in self.gauges
                         if entry[1] == domain),
            histograms=tuple(entry for entry in self.histograms
                             if entry.domain == domain),
        )

    def sim_only(self) -> "MetricsSnapshot":
        """The deterministic half: identical for serial/parallel runs."""
        return self.restrict(SIM)

    def counter_value(self, name: str) -> float:
        """Value of one counter (0 when the counter never registered)."""
        for entry_name, _, value in self.counters:
            if entry_name == name:
                return value
        return 0

    def gauge_value(self, name: str) -> float:
        for entry_name, _, value in self.gauges:
            if entry_name == name:
                return value
        return 0.0

    def histogram_named(self, name: str) -> Optional[HistogramSnapshot]:
        for histogram in self.histograms:
            if histogram.name == name:
                return histogram
        return None

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Strict-JSON-safe dictionary, grouped by domain.

        Non-finite values are emitted as ``None`` — the export contract
        of the whole repository is that no JSON artifact ever contains a
        bare ``Infinity``/``NaN`` token.
        """
        out: dict = {SIM: _domain_dict(), WALL: _domain_dict()}
        for name, domain, value in self.counters:
            out[domain]["counters"][name] = _finite(value)
        for name, domain, value in self.gauges:
            out[domain]["gauges"][name] = _finite(value)
        for histogram in self.histograms:
            out[histogram.domain]["histograms"][histogram.name] = {
                "edges": [_finite(edge) for edge in histogram.edges],
                "counts": list(histogram.counts),
                "overflow": histogram.overflow,
                "total": histogram.total,
                "sum": _finite(histogram.sum),
            }
        return out

    def to_json(self, indent: int = 2) -> str:
        """Strict JSON rendering (raises rather than emit Infinity/NaN)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)


def _domain_dict() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _finite(value: float) -> Optional[float]:
    """JSON-safe number: None for inf/-inf/nan, the value otherwise."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class MetricsRegistry:
    """Factory and container for a pipeline stage's instruments.

    One registry per shard (and one per standalone component that is not
    handed a shared one): components call :meth:`counter` /
    :meth:`gauge` / :meth:`histogram` at construction, which create-or-
    return the named instrument — two components naming the same metric
    share the instrument, mismatched re-registrations raise.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration -------------------------------------------------- #

    def counter(self, name: str, domain: str = SIM,
                help: str = "") -> Counter:
        _check_name(name)
        _check_domain(domain)
        existing = self._counters.get(name)
        if existing is not None:
            if existing.domain != domain:
                raise MetricsError(
                    f"counter {name} re-registered in domain {domain!r} "
                    f"(was {existing.domain!r})")
            return existing
        self._claim(name)
        instrument = Counter(name, domain=domain, help=help)
        self._counters[name] = instrument
        return instrument

    def gauge(self, name: str, domain: str = SIM, help: str = "") -> Gauge:
        _check_name(name)
        _check_domain(domain)
        existing = self._gauges.get(name)
        if existing is not None:
            if existing.domain != domain:
                raise MetricsError(
                    f"gauge {name} re-registered in domain {domain!r} "
                    f"(was {existing.domain!r})")
            return existing
        self._claim(name)
        instrument = Gauge(name, domain=domain, help=help)
        self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str, edges: Sequence[float],
                  domain: str = SIM, help: str = "") -> Histogram:
        _check_name(name)
        _check_domain(domain)
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.domain != domain \
                    or existing.edges != tuple(float(e) for e in edges):
                raise MetricsError(
                    f"histogram {name} re-registered with different "
                    f"edges/domain")
            return existing
        self._claim(name)
        instrument = Histogram(name, edges, domain=domain, help=help)
        self._histograms[name] = instrument
        return instrument

    def _claim(self, name: str) -> None:
        if name in self._counters or name in self._gauges \
                or name in self._histograms:
            raise MetricsError(
                f"metric name {name} already registered as another kind")

    # -- projection ---------------------------------------------------- #

    def snapshot(self) -> MetricsSnapshot:
        """Immutable name-sorted projection of the current values."""
        return MetricsSnapshot(
            counters=tuple((c.name, c.domain, c.value)
                           for c in sorted(self._counters.values(),
                                           key=lambda c: c.name)),
            gauges=tuple((g.name, g.domain, g.value)
                         for g in sorted(self._gauges.values(),
                                         key=lambda g: g.name)),
            histograms=tuple(
                HistogramSnapshot(
                    name=h.name, domain=h.domain, edges=h.edges,
                    counts=tuple(h.counts), overflow=h.overflow,
                    total=h.total, sum=h.sum)
                for h in sorted(self._histograms.values(),
                                key=lambda h: h.name)),
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot's values into this registry's instruments.

        Creates missing instruments on the fly; merge rules match
        :func:`merge_snapshots` (sum / max / bucket-wise sum).
        """
        for name, domain, value in snapshot.counters:
            self.counter(name, domain=domain).inc(value)
        for name, domain, value in snapshot.gauges:
            gauge = self.gauge(name, domain=domain)
            gauge.set(max(gauge.value, value))
        for incoming in snapshot.histograms:
            histogram = self.histogram(incoming.name, incoming.edges,
                                       domain=incoming.domain)
            for index, count in enumerate(incoming.counts):
                histogram.counts[index] += count
            histogram.overflow += incoming.overflow
            histogram.total += incoming.total
            histogram.sum += incoming.sum


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold snapshots into one, in the iteration order given.

    Counters and histogram buckets sum, gauges take the maximum, and the
    result is name-sorted — so for a fixed input order (the canonical
    shard plan order) the merge is byte-deterministic, and because every
    reduction is commutative it is in fact order-independent for
    everything except float rounding of sums (which the canonical order
    pins down).
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.absorb(snapshot)
    return registry.snapshot()
