"""Lightweight timing spans over explicit clocks.

A :class:`Timer` observes elapsed time into a fixed-edge histogram.  The
clock is always explicit:

* **Sim-domain timers** must be driven by the simulation's own clock
  (``SimClock.now`` or any other function of simulated state) — see
  :func:`sim_timer`.  These are part of the determinism contract: a
  seeded run produces byte-identical sim-domain timings, serial or
  parallel.
* **Wall-domain timers** (:func:`wall_timer`) read
  ``time.perf_counter`` and measure the host machine.  They are
  excluded from the determinism contract by construction (they register
  in the ``wall`` domain) and exist for the ROADMAP's optimisation
  work: per-stage wall timings tell us where a run actually spends its
  time.

Never use ``time.time()``/``time.perf_counter()`` for a sim-domain
metric — that is the exact mistake the domain split makes impossible to
hide, because the instrument's domain is fixed at registration.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.obs.metrics import SIM, WALL, Histogram, MetricsRegistry

#: Default span edges for wall-clock stage timings (seconds): 1 µs – 10 s.
WALL_TIME_EDGES: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

#: Default span edges for simulated durations (seconds): sub-second
#: beacon exchanges up to multi-minute exposures.
SIM_TIME_EDGES: tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0)


class Timer:
    """Observes elapsed ``clock()`` time into a histogram.

    >>> registry = MetricsRegistry()
    >>> ticks = iter([0.0, 2.5])
    >>> timer = Timer(registry.histogram("demo.seconds", (1.0, 5.0)),
    ...               clock=lambda: next(ticks))
    >>> with timer.measure():
    ...     pass
    >>> registry.snapshot().histogram_named("demo.seconds").sum
    2.5
    """

    __slots__ = ("histogram", "clock")

    def __init__(self, histogram: Histogram,
                 clock: Callable[[], float]) -> None:
        self.histogram = histogram
        self.clock = clock

    def measure(self) -> "_Span":
        """Context manager recording one span."""
        return _Span(self)

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds)


class _Span:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._timer.clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.histogram.observe(self._timer.clock() - self._start)


def wall_timer(registry: MetricsRegistry, name: str,
               edges: Sequence[float] = WALL_TIME_EDGES,
               help: str = "") -> Timer:
    """A host-machine timer; registers in the ``wall`` domain."""
    return Timer(registry.histogram(name, edges, domain=WALL, help=help),
                 clock=time.perf_counter)


def sim_timer(registry: MetricsRegistry, name: str,
              clock: Callable[[], float],
              edges: Sequence[float] = SIM_TIME_EDGES,
              help: str = "") -> Timer:
    """A simulation-time timer; *clock* must read simulated time only."""
    return Timer(registry.histogram(name, edges, domain=SIM, help=help),
                 clock=clock)
