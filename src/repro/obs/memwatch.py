"""Per-stage memory watermarks: RSS deltas and tracemalloc peaks.

ROADMAP item 2 (the columnar data layer) needs evidence about *where* a
run's memory goes — world build, shard simulation, the merge fold, the
enrichment pass, the audits.  This module measures exactly that: a
:class:`MemoryWatch` wraps each stage in a context manager that samples
the process RSS before and after (and, when tracing is enabled, the
tracemalloc peak inside), and records the results as **wall-domain
gauges** named ``mem.{stage}.{field}``.

Riding the existing metrics layer is the whole design: gauges merge as
the maximum across snapshots, which is precisely watermark semantics —
the per-shard ``simulate`` stage travels inside each
:class:`~repro.experiments.runner.ShardOutput` metrics snapshot and the
canonical merge yields the worst shard's numbers, with zero new wire
plumbing.  Being wall-domain, the gauges are excluded from the
serial-vs-parallel equivalence contract like every other host fact.

RSS is read from ``/proc/self/statm`` (cheap, Linux); on hosts without
it the watch degrades to zeros rather than failing.  tracemalloc costs
roughly 2x on allocation-heavy code, so it is off by default and opted
into via the ``REPRO_TRACEMALLOC`` environment variable (inherited by
forked pool workers) or an explicit constructor flag.

Standard library only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

#: Environment flag enabling tracemalloc peaks ("1"/"true"/"yes"/"on").
TRACEMALLOC_ENV = "REPRO_TRACEMALLOC"

#: Gauge name prefix; consumers (bench, report) rebuild the per-stage
#: table by parsing ``mem.{stage}.{field}`` back apart.
GAUGE_PREFIX = "mem"

_PAGE_SIZE = 4096
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # non-POSIX host
    pass


def tracemalloc_enabled_from_env() -> bool:
    """Whether the environment opts this process into tracemalloc peaks."""
    return os.environ.get(TRACEMALLOC_ENV, "").strip().lower() \
        in ("1", "true", "yes", "on")


def current_rss_bytes() -> int:
    """This process's resident set right now, in bytes (0 if unknown)."""
    try:
        with open("/proc/self/statm", "rb") as statm:
            return int(statm.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0


@dataclass
class StageStats:
    """Accumulated memory accounting for one named stage."""

    #: Times the stage ran (the merge fold runs once per shard).
    spans: int = 0
    #: Largest RSS observed at any stage exit.
    rss_peak_bytes: int = 0
    #: Sum of per-span RSS growth (may be negative after a collection).
    rss_delta_bytes: int = 0
    #: Largest tracemalloc peak inside any span (0 when tracing is off).
    tracemalloc_peak_bytes: int = 0


class MemoryWatch:
    """Measures per-stage memory watermarks and records them as gauges.

    ``registry`` (optional) receives the gauges after every span, so a
    watch constructed with the shard's registry feeds the shard snapshot
    with no extra call; a registry-less watch accumulates and is flushed
    later with :meth:`record_to` (the merger does this at finalisation).
    """

    def __init__(self, registry=None,
                 trace: Optional[bool] = None) -> None:
        self.registry = registry
        self.trace = tracemalloc_enabled_from_env() if trace is None \
            else trace
        self._stages: dict[str, StageStats] = {}

    @contextmanager
    def stage(self, name: str):
        """Measure one stage span; safe to re-enter (stats accumulate)."""
        rss_before = current_rss_bytes()
        started_tracing = False
        if self.trace:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracing = True
            tracemalloc.reset_peak()
        try:
            yield
        finally:
            traced_peak = 0
            if self.trace:
                import tracemalloc

                traced_peak = tracemalloc.get_traced_memory()[1]
                if started_tracing:
                    tracemalloc.stop()
            rss_after = current_rss_bytes()
            stats = self._stages.setdefault(name, StageStats())
            stats.spans += 1
            stats.rss_peak_bytes = max(stats.rss_peak_bytes, rss_after,
                                       rss_before)
            stats.rss_delta_bytes += rss_after - rss_before
            stats.tracemalloc_peak_bytes = max(stats.tracemalloc_peak_bytes,
                                               traced_peak)
            if self.registry is not None:
                self._record_stage(self.registry, name, stats)

    def stages(self) -> dict[str, StageStats]:
        """The accumulated per-stage stats (insertion-ordered)."""
        return dict(self._stages)

    def record_to(self, registry) -> None:
        """Write every accumulated stage's gauges into *registry*."""
        for name, stats in self._stages.items():
            self._record_stage(registry, name, stats)

    @staticmethod
    def _record_stage(registry, name: str, stats: StageStats) -> None:
        from repro.obs.metrics import WALL

        for suffix, value in (
                ("spans", stats.spans),
                ("rss_peak_bytes", stats.rss_peak_bytes),
                ("rss_delta_bytes", stats.rss_delta_bytes),
                ("tracemalloc_peak_bytes", stats.tracemalloc_peak_bytes)):
            registry.gauge(f"{GAUGE_PREFIX}.{name}.{suffix}",
                           domain=WALL).set(value)


def memory_watermarks(metrics) -> dict:
    """Rebuild the per-stage watermark table from a metrics snapshot.

    The inverse of :meth:`MemoryWatch.record_to`: collects every
    wall-domain ``mem.{stage}.{field}`` gauge into
    ``{stage: {field: value}}``.  Used by the bench document and the run
    report.
    """
    from repro.obs.metrics import WALL

    stages: dict[str, dict[str, float]] = {}
    prefix = GAUGE_PREFIX + "."
    for name, domain, value in metrics.gauges:
        if domain != WALL or not name.startswith(prefix):
            continue
        _, stage, field = name.split(".", 2)
        stages.setdefault(stage, {})[field] = value
    return stages
