"""Human-readable rendering of metrics snapshots.

``render_metrics`` produces the aligned text tables the ``--metrics``
CLI flag prints to stderr; the strict-JSON export lives on
:meth:`repro.obs.metrics.MetricsSnapshot.to_json`.
"""

from __future__ import annotations

from repro.obs.metrics import SIM, WALL, MetricsSnapshot
from repro.util.tables import render_table

_DOMAIN_TITLES = {
    SIM: "Sim-domain metrics (deterministic at fixed seed)",
    WALL: "Wall-clock metrics (host machine; not reproducible)",
}


def _number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_metrics(snapshot: MetricsSnapshot) -> str:
    """Aligned text tables, one section per non-empty domain."""
    sections: list[str] = []
    for domain in (SIM, WALL):
        restricted = snapshot.restrict(domain)
        rows: list[list[object]] = []
        for name, _, value in restricted.counters:
            rows.append([name, "counter", _number(value), ""])
        for name, _, value in restricted.gauges:
            rows.append([name, "gauge", _number(value), ""])
        for histogram in restricted.histograms:
            detail = (f"mean={histogram.sum / histogram.total:.6g} "
                      if histogram.total else "") + \
                f"overflow={histogram.overflow}"
            rows.append([histogram.name, "histogram",
                         _number(histogram.total), detail])
        if not rows:
            continue
        rows.sort(key=lambda row: str(row[0]))
        sections.append(render_table(
            ["Metric", "Kind", "Value", "Detail"], rows,
            title=_DOMAIN_TITLES[domain], right_align=(2,)))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
