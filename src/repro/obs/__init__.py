"""Deterministic observability for the collection/auction/audit pipeline.

See :mod:`repro.obs.metrics` for the registry/snapshot model and
:mod:`repro.obs.timing` for clock-explicit timing spans.  The package
depends only on the standard library (plus the repo's own table
renderer), so every other ``repro`` package may instrument itself with
it without creating an import cycle.
"""

from repro.obs.events import (
    DEFAULT_SHARD_EVENT_CAPACITY,
    EVENTS_SCHEMA,
    NULL_EVENTS,
    Event,
    EventLog,
    EventSchemaError,
    dumps_events_jsonl,
    validate_event_dict,
    validate_events_jsonl,
)
from repro.obs.memwatch import (
    TRACEMALLOC_ENV,
    MemoryWatch,
    StageStats,
    current_rss_bytes,
    memory_watermarks,
    tracemalloc_enabled_from_env,
)
from repro.obs.metrics import (
    SIM,
    WALL,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.progress import ProgressRenderer, format_heartbeat
from repro.obs.render import render_metrics
from repro.obs.timing import (
    SIM_TIME_EDGES,
    WALL_TIME_EDGES,
    Timer,
    sim_timer,
    wall_timer,
)
from repro.obs.trace import (
    NULL_TRACER,
    FlightRecorder,
    NullTracer,
    SpanRecord,
    TraceError,
    Tracer,
    TraceRecord,
    trace_id_for,
)
from repro.obs.traceio import (
    AuditVerdict,
    chrome_trace_events,
    dumps_chrome_trace,
    dumps_trace_jsonl,
    loads_trace_jsonl,
    render_explain,
    render_trace_tree,
    with_audit_spans,
)

__all__ = [
    "DEFAULT_SHARD_EVENT_CAPACITY",
    "EVENTS_SCHEMA",
    "NULL_EVENTS",
    "Event",
    "EventLog",
    "EventSchemaError",
    "dumps_events_jsonl",
    "validate_event_dict",
    "validate_events_jsonl",
    "TRACEMALLOC_ENV",
    "MemoryWatch",
    "StageStats",
    "current_rss_bytes",
    "memory_watermarks",
    "tracemalloc_enabled_from_env",
    "ProgressRenderer",
    "format_heartbeat",
    "SIM",
    "WALL",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "render_metrics",
    "SIM_TIME_EDGES",
    "WALL_TIME_EDGES",
    "Timer",
    "sim_timer",
    "wall_timer",
    "NULL_TRACER",
    "FlightRecorder",
    "NullTracer",
    "SpanRecord",
    "TraceError",
    "Tracer",
    "TraceRecord",
    "trace_id_for",
    "AuditVerdict",
    "chrome_trace_events",
    "dumps_chrome_trace",
    "dumps_trace_jsonl",
    "loads_trace_jsonl",
    "render_explain",
    "render_trace_tree",
    "with_audit_spans",
]
