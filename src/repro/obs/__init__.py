"""Deterministic observability for the collection/auction/audit pipeline.

See :mod:`repro.obs.metrics` for the registry/snapshot model and
:mod:`repro.obs.timing` for clock-explicit timing spans.  The package
depends only on the standard library (plus the repo's own table
renderer), so every other ``repro`` package may instrument itself with
it without creating an import cycle.
"""

from repro.obs.metrics import (
    SIM,
    WALL,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.render import render_metrics
from repro.obs.timing import (
    SIM_TIME_EDGES,
    WALL_TIME_EDGES,
    Timer,
    sim_timer,
    wall_timer,
)

__all__ = [
    "SIM",
    "WALL",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "render_metrics",
    "SIM_TIME_EDGES",
    "WALL_TIME_EDGES",
    "Timer",
    "sim_timer",
    "wall_timer",
]
