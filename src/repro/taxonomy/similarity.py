"""Leacock–Chodorow semantic similarity.

The paper judges a publisher *contextually meaningful* when any of its
topics is "semantically similar" to any campaign keyword, using
Leacock–Chodorow as in Carrascosa et al. (CoNEXT'15).  LCH over a rooted
taxonomy is

    sim(a, b) = -log( len(a, b) / (2 * D) )

where ``len`` is the shortest path between the concepts counted in *nodes*
(edges + 1, so identical concepts have length 1) and ``D`` is the maximum
depth of the taxonomy in nodes.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.taxonomy.tree import TaxonomyTree


def lch_similarity(tree: TaxonomyTree, a: str, b: str) -> float:
    """Leacock–Chodorow similarity between two taxonomy nodes.

    Higher is more similar; identical nodes score ``-log(1 / 2D)`` which is
    the maximum attainable value for the taxonomy.
    """
    length_nodes = tree.path_length(a, b) + 1
    return -math.log(length_nodes / (2.0 * tree.max_depth))


def max_similarity_value(tree: TaxonomyTree) -> float:
    """The LCH score of a node with itself (the scale's ceiling)."""
    return -math.log(1.0 / (2.0 * tree.max_depth))


def max_lch_similarity(tree: TaxonomyTree, topics_a: Iterable[str],
                       topics_b: Iterable[str]) -> float:
    """Best LCH score over the cross product of two topic sets.

    This is the publisher-vs-campaign comparison: each side contributes all
    its topics and the most similar pair decides.  Returns ``-inf`` when
    either side is empty.
    """
    best = float("-inf")
    topics_b = list(topics_b)
    for topic_a in topics_a:
        for topic_b in topics_b:
            score = lch_similarity(tree, topic_a, topic_b)
            if score > best:
                best = score
    return best


def similarity_threshold(tree: TaxonomyTree, max_path_edges: int = 3) -> float:
    """The LCH score of two nodes *max_path_edges* apart.

    Used as the decision boundary: concepts within this path distance count
    as semantically similar.  The default of 3 edges admits siblings and
    uncle/nephew pairs but rejects cross-branch pairs in the default
    taxonomy.
    """
    if max_path_edges < 0:
        raise ValueError("max_path_edges must be non-negative")
    return -math.log((max_path_edges + 1) / (2.0 * tree.max_depth))
