"""The default topic ontology and keyword lexicon.

``build_default_taxonomy`` constructs the hierarchy the simulation and the
context audit share; ``Lexicon`` maps free-text keywords (campaign targeting
strings, publisher keyword lists) onto taxonomy nodes.

The ontology is sized like a pruned WordNet domain slice: ~190 nodes across
the content verticals display campaigns actually touch, including the
brand-unsafe verticals (adult, gambling, piracy) the brand-safety audit
needs to flag.
"""

from __future__ import annotations

from repro.taxonomy.tree import TaxonomyTree

#: (branch path under the root). Paths share prefixes, so e.g. both football
#: and basketball hang off sports.
_BRANCHES: tuple[tuple[str, ...], ...] = (
    # Science & education — the "Research" campaigns' home turf.
    ("science", "research"),
    ("science", "research", "academic-publishing"),
    ("science", "research", "laboratories"),
    ("science", "research", "research-grants"),
    ("science", "education"),
    ("science", "education", "universities"),
    ("science", "education", "universities", "postgraduate"),
    ("science", "education", "schools"),
    ("science", "education", "online-courses"),
    ("science", "engineering"),
    ("science", "engineering", "telematics"),
    ("science", "engineering", "telecommunications"),
    ("science", "engineering", "robotics"),
    ("science", "physics"),
    ("science", "biology"),
    ("science", "chemistry"),
    ("science", "mathematics"),
    # Sports — the "Football" campaigns' home turf.
    ("sports", "football"),
    ("sports", "football", "la-liga"),
    ("sports", "football", "premier-league"),
    ("sports", "football", "champions-league"),
    ("sports", "football", "transfers"),
    ("sports", "basketball"),
    ("sports", "tennis"),
    ("sports", "cycling"),
    ("sports", "motorsport"),
    ("sports", "betting-sports"),
    # News & media.
    ("news", "national-news"),
    ("news", "international-news"),
    ("news", "local-news"),
    ("news", "politics"),
    ("news", "weather"),
    ("news", "press-agencies"),
    # Entertainment.
    ("entertainment", "movies"),
    ("entertainment", "television"),
    ("entertainment", "music"),
    ("entertainment", "celebrities"),
    ("entertainment", "video-games"),
    ("entertainment", "video-games", "mmorpg"),
    ("entertainment", "streaming"),
    ("entertainment", "humor"),
    # Technology.
    ("technology", "software"),
    ("technology", "software", "mobile-apps"),
    ("technology", "software", "operating-systems"),
    ("technology", "hardware"),
    ("technology", "hardware", "smartphones"),
    ("technology", "internet"),
    ("technology", "internet", "web-development"),
    ("technology", "internet", "social-networks"),
    ("technology", "security"),
    # Lifestyle.
    ("lifestyle", "travel"),
    ("lifestyle", "travel", "hotels"),
    ("lifestyle", "travel", "flights"),
    ("lifestyle", "travel", "tourism"),
    ("lifestyle", "food"),
    ("lifestyle", "food", "recipes"),
    ("lifestyle", "fashion"),
    ("lifestyle", "health"),
    ("lifestyle", "health", "fitness"),
    ("lifestyle", "health", "nutrition"),
    ("lifestyle", "parenting"),
    ("lifestyle", "home-garden"),
    ("lifestyle", "automotive"),
    ("lifestyle", "automotive", "car-reviews"),
    # Commerce.
    ("commerce", "shopping"),
    ("commerce", "shopping", "classifieds"),
    ("commerce", "shopping", "coupons"),
    ("commerce", "shopping", "electronics-retail"),
    ("commerce", "finance"),
    ("commerce", "finance", "banking"),
    ("commerce", "finance", "insurance"),
    ("commerce", "finance", "forex"),
    ("commerce", "real-estate"),
    ("commerce", "jobs"),
    ("commerce", "jobs", "job-boards"),
    # Brand-unsafe verticals.
    ("unsafe", "adult"),
    ("unsafe", "gambling"),
    ("unsafe", "gambling", "online-casino"),
    ("unsafe", "piracy"),
    ("unsafe", "piracy", "torrents"),
    ("unsafe", "weapons"),
    ("unsafe", "clickbait"),
)

#: keyword → taxonomy node. Keywords are matched lower-cased.
_KEYWORD_MAP: dict[str, str] = {
    # campaign targeting vocabulary
    "research": "research",
    "science": "science",
    "scientific research": "research",
    "universities": "universities",
    "university": "universities",
    "telematics": "telematics",
    "telecommunications": "telecommunications",
    "engineering": "engineering",
    "education": "education",
    "football": "football",
    "soccer": "football",
    "la liga": "la-liga",
    "premier league": "premier-league",
    "champions league": "champions-league",
    "sports": "sports",
    "basketball": "basketball",
    "tennis": "tennis",
    # publisher-side vocabulary
    "news": "news",
    "politics": "politics",
    "weather": "weather",
    "movies": "movies",
    "cinema": "movies",
    "tv": "television",
    "music": "music",
    "games": "video-games",
    "gaming": "video-games",
    "streaming": "streaming",
    "software": "software",
    "apps": "mobile-apps",
    "smartphones": "smartphones",
    "internet": "internet",
    "web": "web-development",
    "social": "social-networks",
    "security": "security",
    "travel": "travel",
    "hotels": "hotels",
    "flights": "flights",
    "tourism": "tourism",
    "food": "food",
    "recipes": "recipes",
    "fashion": "fashion",
    "health": "health",
    "fitness": "fitness",
    "cars": "automotive",
    "shopping": "shopping",
    "classifieds": "classifieds",
    "deals": "coupons",
    "finance": "finance",
    "banking": "banking",
    "insurance": "insurance",
    "forex": "forex",
    "real estate": "real-estate",
    "jobs": "jobs",
    "employment": "job-boards",
    "adult": "adult",
    "casino": "online-casino",
    "betting": "gambling",
    "poker": "gambling",
    "torrents": "torrents",
    "downloads": "piracy",
    "celebrity": "celebrities",
    "humor": "humor",
    "laboratory": "laboratories",
    "grants": "research-grants",
    "postgraduate": "postgraduate",
    "online courses": "online-courses",
    "robotics": "robotics",
    "physics": "physics",
    "biology": "biology",
    "chemistry": "chemistry",
    "mathematics": "mathematics",
}


def build_default_taxonomy() -> TaxonomyTree:
    """Construct the default ontology (root node ``entity``)."""
    tree = TaxonomyTree("entity")
    for branch in _BRANCHES:
        tree.add_path(*branch)
    return tree


class Lexicon:
    """Keyword ↔ taxonomy mapping with normalisation.

    Campaign keywords and publisher keyword lists are free text; the audit
    needs them as taxonomy nodes before it can compute LCH similarity.
    Unknown keywords resolve to None (and the context audit then falls back
    to literal string matching, as the paper's criterion 1 does).
    """

    def __init__(self, tree: TaxonomyTree, keyword_map: dict[str, str]) -> None:
        self.tree = tree
        self._map: dict[str, str] = {}
        for keyword, node in keyword_map.items():
            if node not in tree:
                raise KeyError(f"lexicon maps {keyword!r} to unknown node {node!r}")
            self._map[self.normalize(keyword)] = node
        #: keyword-tuple → resolved topic tuple.  One shared store: the
        #: matching engine and the context audit both resolve campaign
        #: keyword lists through here, so each list is resolved once.
        self._topics_cache: dict[tuple[str, ...], tuple[str, ...]] = {}

    @staticmethod
    def normalize(keyword: str) -> str:
        """Canonical keyword form: lower-cased, collapsed whitespace."""
        return " ".join(keyword.lower().split())

    def topic_of(self, keyword: str) -> str | None:
        """Taxonomy node for *keyword*, or None when out of vocabulary."""
        normalized = self.normalize(keyword)
        if normalized in self._map:
            return self._map[normalized]
        # A keyword that literally names a node is its own topic.
        if normalized in self.tree:
            return normalized
        return None

    def topics_of(self, keywords: list[str]) -> list[str]:
        """Resolve a keyword list, dropping out-of-vocabulary entries and
        de-duplicating while preserving order."""
        seen: set[str] = set()
        topics: list[str] = []
        for keyword in keywords:
            node = self.topic_of(keyword)
            if node is not None and node not in seen:
                seen.add(node)
                topics.append(node)
        return topics

    def campaign_topics(self, campaign_id: str,
                        keywords: tuple[str, ...]) -> tuple[str, ...]:
        """Memoised :meth:`topics_of` for a campaign's keyword tuple.

        Keyed by the keyword tuple itself (not the campaign id, which
        tests reuse across differing specs), so every consumer that
        resolves the same keyword list — the matching engine, the context
        audit — hits one shared entry.
        """
        cached = self._topics_cache.get(keywords)
        if cached is None:
            cached = tuple(self.topics_of(list(keywords)))
            self._topics_cache[keywords] = cached
        return cached

    def vocabulary(self) -> list[str]:
        """All known keyword forms (normalised)."""
        return sorted(self._map)


def build_default_lexicon() -> Lexicon:
    """The default lexicon bound to the default taxonomy."""
    return Lexicon(build_default_taxonomy(), _KEYWORD_MAP)
