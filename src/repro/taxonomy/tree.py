"""Rooted topic taxonomy with ancestor/path queries.

A small, WordNet-shaped structure: every node has one parent (single
inheritance keeps Leacock–Chodorow well-defined), node depth is counted in
*nodes* from the root (root depth = 1, as NLTK does), and shortest paths
go through the lowest common ancestor.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.util import hotpath


class TaxonomyError(Exception):
    """Malformed taxonomy operation (unknown node, duplicate, cycle...)."""


class TaxonomyTree:
    """A rooted tree of topic names.

    >>> tree = TaxonomyTree("entity")
    >>> tree.add("sports", "entity")
    >>> tree.add("football", "sports")
    >>> tree.depth("football")
    3
    >>> tree.path_length("football", "sports")
    1
    """

    def __init__(self, root: str) -> None:
        if not root:
            raise TaxonomyError("root name must be non-empty")
        self.root = root
        self._parent: dict[str, Optional[str]] = {root: None}
        self._children: dict[str, list[str]] = {root: []}
        self._depth: dict[str, int] = {root: 1}
        # Tree-level memos — the one keyed store every similarity consumer
        # (MatchEngine, the context audit, LCH scoring) shares.  All three
        # are invalidated together whenever the tree gains a node.
        self._path_cache: dict[tuple[str, str], int] = {}
        self._neighborhood_cache: dict[tuple[str, int], frozenset[str]] = {}
        self._max_depth_cache: Optional[int] = None

    def __contains__(self, name: str) -> bool:
        return name in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parent)

    def add(self, name: str, parent: str) -> None:
        """Attach *name* under *parent*."""
        if not name:
            raise TaxonomyError("node name must be non-empty")
        if name in self._parent:
            raise TaxonomyError(f"duplicate node: {name!r}")
        if parent not in self._parent:
            raise TaxonomyError(f"unknown parent: {parent!r}")
        self._parent[name] = parent
        self._children[name] = []
        self._children[parent].append(name)
        self._depth[name] = self._depth[parent] + 1
        self._path_cache.clear()
        self._neighborhood_cache.clear()
        self._max_depth_cache = None

    def add_path(self, *names: str) -> None:
        """Attach a chain under the root, creating missing links.

        ``add_path('sports', 'football', 'la-liga')`` ensures
        root→sports→football→la-liga, adding only absent nodes (and
        verifying the parents of already-present ones).
        """
        parent = self.root
        for name in names:
            if name in self._parent:
                if self._parent[name] != parent:
                    raise TaxonomyError(
                        f"{name!r} already attached under {self._parent[name]!r}, "
                        f"not {parent!r}")
            else:
                self.add(name, parent)
            parent = name

    def parent(self, name: str) -> Optional[str]:
        """Parent of *name* (None for the root)."""
        self._require(name)
        return self._parent[name]

    def children(self, name: str) -> tuple[str, ...]:
        """Direct children of *name*."""
        self._require(name)
        return tuple(self._children[name])

    def depth(self, name: str) -> int:
        """Depth in nodes (root = 1)."""
        self._require(name)
        return self._depth[name]

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node — the D in Leacock–Chodorow."""
        if self._max_depth_cache is None:
            self._max_depth_cache = max(self._depth.values())
        return self._max_depth_cache

    def ancestors(self, name: str) -> list[str]:
        """Path from *name* up to (and including) the root."""
        self._require(name)
        path = [name]
        while True:
            parent = self._parent[path[-1]]
            if parent is None:
                return path
            path.append(parent)

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        """The deepest node that is an ancestor of both *a* and *b*."""
        ancestors_a = set(self.ancestors(a))
        for node in self.ancestors(b):
            if node in ancestors_a:
                return node
        raise TaxonomyError("tree is disconnected")  # unreachable by construction

    def path_length_uncached(self, a: str, b: str) -> int:
        """Reference path computation: walk both ancestor chains per call."""
        lca = self.lowest_common_ancestor(a, b)
        return (self._depth[a] - self._depth[lca]) + (self._depth[b] - self._depth[lca])

    def path_length(self, a: str, b: str) -> int:
        """Shortest path between two nodes, counted in edges (memoised).

        Pair results are cached under an order-normalised key — the memo
        every LCH-similarity consumer shares — and invalidated whenever
        the tree grows.
        """
        if hotpath._REFERENCE:
            return self.path_length_uncached(a, b)
        key = (a, b) if a <= b else (b, a)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self.path_length_uncached(a, b)
            self._path_cache[key] = cached
        return cached

    def nodes_within(self, name: str, edges: int) -> frozenset[str]:
        """Every node at most *edges* tree edges from *name* (memoised).

        This is the set-index form of the path-length criterion:
        ``b in tree.nodes_within(a, r)`` iff ``tree.path_length(a, b) <= r``.
        The matching engine and the context audit intersect these
        neighbourhoods with topic sets instead of running nested
        per-pair path computations.
        """
        if edges < 0:
            raise TaxonomyError("edges must be non-negative")
        key = (name, edges)
        cached = self._neighborhood_cache.get(key)
        if cached is None:
            self._require(name)
            frontier = [name]
            reached = {name}
            for _ in range(edges):
                next_frontier: list[str] = []
                for node in frontier:
                    parent = self._parent[node]
                    if parent is not None and parent not in reached:
                        reached.add(parent)
                        next_frontier.append(parent)
                    for child in self._children[node]:
                        if child not in reached:
                            reached.add(child)
                            next_frontier.append(child)
                frontier = next_frontier
            cached = frozenset(reached)
            self._neighborhood_cache[key] = cached
        return cached

    def leaves(self) -> list[str]:
        """All nodes with no children."""
        return [name for name, kids in self._children.items() if not kids]

    def subtree(self, name: str) -> list[str]:
        """*name* plus every descendant (preorder)."""
        self._require(name)
        result = []
        stack = [name]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(self._children[node]))
        return result

    def _require(self, name: str) -> None:
        if name not in self._parent:
            raise TaxonomyError(f"unknown node: {name!r}")
