"""Topic taxonomy substrate.

Stands in for WordNet in the paper's context analysis: a hand-built topic
hierarchy over which Leacock–Chodorow similarity is computed, plus the
lexicon tying campaign keywords and publisher themes to taxonomy nodes.
"""

from repro.taxonomy.tree import TaxonomyTree, TaxonomyError
from repro.taxonomy.similarity import lch_similarity, max_lch_similarity
from repro.taxonomy.lexicon import (
    build_default_taxonomy,
    Lexicon,
    build_default_lexicon,
)

__all__ = [
    "TaxonomyTree",
    "TaxonomyError",
    "lch_similarity",
    "max_lch_similarity",
    "build_default_taxonomy",
    "Lexicon",
    "build_default_lexicon",
]
