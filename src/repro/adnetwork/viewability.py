"""Exposure and viewability model.

Splits impression quality into the two quantities the paper distinguishes:

* **exposure time** — how long the ad's page stayed open after the creative
  rendered.  This is what the auditor can measure (connection duration),
  and its ≥ 1 s fraction is the *upper bound* viewability of Table 3.
* **vendor viewability** — the MRC standard the network itself measures:
  ≥ 50 % of pixels in-viewport for ≥ 1 s.  The network can see iframe
  geometry, the auditor cannot (Same-Origin policy).  Vendor-viewable
  impressions are the only ones that reach the placement report, which is
  the paper's explanation for the missing publishers of Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.web.browsing import Pageview


@dataclass(frozen=True)
class Exposure:
    """Quality facts for one delivered impression."""

    render_delay: float       # seconds between page load and creative render
    exposure_seconds: float   # creative render → page unload
    pixels_in_view: bool      # did ≥50 % of the creative enter the viewport?

    @property
    def vendor_viewable(self) -> bool:
        """The network's MRC viewability verdict."""
        return self.pixels_in_view and self.exposure_seconds >= 1.0

    @property
    def audit_viewable_upper_bound(self) -> bool:
        """What the beacon can certify: exposed for at least one second."""
        return self.exposure_seconds >= 1.0


@dataclass(frozen=True)
class ExposureConfig:
    """Rendering/layout knobs."""

    render_delay_min: float = 0.2
    render_delay_max: float = 2.8
    #: Probability that the slot is (or scrolls) into the viewport; higher
    #: on engaging pages where visitors scroll and dwell.
    base_in_view_prob: float = 0.33
    engagement_view_bonus: float = 0.20

    def __post_init__(self) -> None:
        if not 0 <= self.render_delay_min <= self.render_delay_max:
            raise ValueError("invalid render-delay range")
        if not 0.0 <= self.base_in_view_prob <= 1.0:
            raise ValueError("base_in_view_prob must be within [0, 1]")
        if self.engagement_view_bonus < 0:
            raise ValueError("engagement_view_bonus must be non-negative")


class ExposureModel:
    """Samples an :class:`Exposure` for each delivered impression."""

    def __init__(self, config: ExposureConfig | None = None) -> None:
        self.config = config or ExposureConfig()

    def sample(self, pageview: Pageview, rng: random.Random) -> Exposure:
        """Exposure for an ad delivered on *pageview*.

        Exposure time is the dwell remaining after the creative renders —
        engaged audiences (high-engagement publishers, long dwells) yield
        both longer exposures and higher in-view probability, which is what
        pushes the Football campaigns to the top of Table 3.
        """
        config = self.config
        render_delay = rng.uniform(config.render_delay_min,
                                   config.render_delay_max)
        exposure = max(0.0, pageview.dwell_seconds - render_delay)
        in_view_prob = min(0.97, config.base_in_view_prob
                           + config.engagement_view_bonus
                           * (pageview.publisher.engagement - 1.0))
        pixels_in_view = rng.random() < max(0.05, in_view_prob)
        return Exposure(render_delay=render_delay,
                        exposure_seconds=exposure,
                        pixels_in_view=pixels_in_view)
