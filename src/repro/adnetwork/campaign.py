"""Campaign specification.

Mirrors what an advertiser configures in the AdWords UI for a CPM display
campaign: targeted keywords, CPM bid, geographic targeting, flight dates and
budget.  ``frequency_cap`` defaults to None because the network imposes no
default cap — one of the paper's findings (§4.2, Figure 3).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CampaignSpec:
    """One display campaign, as configured by the advertiser."""

    campaign_id: str
    keywords: tuple[str, ...]
    cpm_eur: float
    target_countries: tuple[str, ...]
    start_unix: float
    end_unix: float
    daily_budget_eur: float = 50.0
    frequency_cap: Optional[int] = None
    #: Placement exclusions: domains (and the anonymous aggregate, via
    #: ``exclude_anonymous``) this campaign must never serve on.  This is
    #: the lever the paper's brand-safety audit feeds: blacklist the
    #: unsafe publishers the vendor never disclosed.
    excluded_domains: frozenset[str] = frozenset()
    exclude_anonymous: bool = False
    creative_id: str = ""

    def __post_init__(self) -> None:
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        if not self.keywords:
            raise ValueError("campaign needs at least one targeted keyword")
        if self.cpm_eur <= 0:
            raise ValueError("cpm_eur must be positive")
        if not self.target_countries:
            raise ValueError("campaign needs at least one target country")
        if self.end_unix <= self.start_unix:
            raise ValueError("campaign must end after it starts")
        if self.daily_budget_eur <= 0:
            raise ValueError("daily_budget_eur must be positive")
        if self.frequency_cap is not None and self.frequency_cap < 1:
            raise ValueError("frequency_cap must be >= 1 when set")
        normalized = frozenset(domain.lower() for domain in self.excluded_domains)
        if any(not domain for domain in normalized):
            raise ValueError("excluded domains must be non-empty strings")
        object.__setattr__(self, "excluded_domains", normalized)
        if not self.creative_id:
            object.__setattr__(self, "creative_id", f"{self.campaign_id}-creative")

    @property
    def bid_per_impression(self) -> float:
        """The CPM bid converted to a per-impression price in euros."""
        return self.cpm_eur / 1000.0

    @property
    def duration_days(self) -> float:
        """Flight length in (possibly fractional) days."""
        return (self.end_unix - self.start_unix) / 86_400.0

    def is_active(self, unix_time: float) -> bool:
        """True while the flight is running at *unix_time*."""
        return self.start_unix <= unix_time < self.end_unix

    def targets_country(self, country: str) -> bool:
        """True if the campaign's geo-targeting includes *country*."""
        return country in self.target_countries

    def excludes_publisher(self, domain: str, is_anonymous: bool = False) -> bool:
        """True when placement exclusions forbid serving on *domain*."""
        if self.exclude_anonymous and is_anonymous:
            return True
        return domain.lower() in self.excluded_domains

    def with_exclusions(self, domains, exclude_anonymous: bool | None = None
                        ) -> "CampaignSpec":
        """A copy of this campaign with *domains* added to the blacklist.

        The advertiser-side remediation step: feed the brand-safety
        audit's blacklist back into the campaign configuration.
        """
        import dataclasses

        merged = self.excluded_domains | frozenset(
            domain.lower() for domain in domains)
        return dataclasses.replace(
            self, excluded_domains=merged,
            exclude_anonymous=self.exclude_anonymous
            if exclude_anonymous is None else exclude_anonymous)

    @staticmethod
    def flight(year: int, start_month: int, start_day: int,
               end_month: int, end_day: int) -> tuple[float, float]:
        """Helper to express flight dates the way Table 1 does.

        The end date is inclusive: ``flight(2016, 3, 29, 3, 31)`` runs from
        March 29 00:00 UTC until April 1 00:00 UTC.
        """
        start = _dt.datetime(year, start_month, start_day,
                             tzinfo=_dt.timezone.utc).timestamp()
        end = (_dt.datetime(year, end_month, end_day, tzinfo=_dt.timezone.utc)
               + _dt.timedelta(days=1)).timestamp()
        if end <= start:
            raise ValueError("flight end date precedes its start date")
        return start, end
