"""Budget accounting and pacing.

Tracks per-campaign spend against the daily budget and throttles auction
participation so a flight does not exhaust its budget in the first busy
hour — the standard ad-server behaviour the simulation needs so multi-day
campaigns deliver across their whole window.
"""

from __future__ import annotations

import random

from repro.adnetwork.campaign import CampaignSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

_SECONDS_PER_DAY = 86_400.0


class BudgetPacer:
    """Per-campaign daily spend ledger with probabilistic throttling."""

    def __init__(self, campaigns: list[CampaignSpec],
                 throttle_floor: float = 0.15,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if not 0.0 < throttle_floor <= 1.0:
            raise ValueError("throttle_floor must be within (0, 1]")
        self.throttle_floor = throttle_floor
        self._campaigns = {campaign.campaign_id: campaign
                           for campaign in campaigns}
        if len(self._campaigns) != len(campaigns):
            raise ValueError("duplicate campaign ids")
        self._spent_today: dict[tuple[str, int], float] = {}
        self.total_spend: dict[str, float] = {
            campaign.campaign_id: 0.0 for campaign in campaigns}
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._bid_checks = metrics.counter(
            "pacing.bid_checks", help="may_bid decisions evaluated")
        self._throttles_budget = metrics.counter(
            "pacing.throttles_budget",
            help="bids refused: daily budget already exhausted")
        self._throttles_schedule = metrics.counter(
            "pacing.throttles_schedule",
            help="bids refused: ahead of the intraday spend schedule")
        self._throttles_random = metrics.counter(
            "pacing.throttles_random",
            help="bids refused by probabilistic smoothing")
        self._spend_recorded = metrics.counter(
            "pacing.spend_eur", help="spend charged through the pacer (EUR)")

    @staticmethod
    def _day_index(campaign: CampaignSpec, unix_time: float) -> int:
        return int((unix_time - campaign.start_unix) // _SECONDS_PER_DAY)

    def spent_today(self, campaign: CampaignSpec, unix_time: float) -> float:
        """Spend accumulated on the flight day containing *unix_time*."""
        key = (campaign.campaign_id, self._day_index(campaign, unix_time))
        return self._spent_today.get(key, 0.0)

    def may_bid(self, campaign: CampaignSpec, unix_time: float,
                rng: random.Random) -> bool:
        """Schedule-spread participation decision.

        Spend is admitted against a linear intraday schedule: at any moment
        the campaign may have consumed at most ``daily_budget × (fraction
        of the day elapsed)`` plus a small head-start allowance.  This is
        what spreads a tiny budget across the whole day instead of blowing
        it on the first minutes of traffic — and what lets a campaign with
        plentiful matched inventory stay exactly on schedule (keeping the
        ad server's run-of-network expansion off).
        """
        budget = campaign.daily_budget_eur
        spent = self.spent_today(campaign, unix_time)
        self._bid_checks.inc()
        if spent >= budget:
            self._throttles_budget.inc()
            return self._gate(campaign, unix_time, False, "budget")
        day_fraction = ((unix_time - campaign.start_unix) % _SECONDS_PER_DAY
                        ) / _SECONDS_PER_DAY
        allowed = budget * min(1.0, day_fraction + 0.02)
        if spent >= allowed:
            self._throttles_schedule.inc()
            return self._gate(campaign, unix_time, False, "schedule")
        # Light randomisation avoids serving strictly first-come pageviews.
        if rng.random() < max(self.throttle_floor, 1.0 - spent / budget):
            return self._gate(campaign, unix_time, True, "open")
        self._throttles_random.inc()
        return self._gate(campaign, unix_time, False, "random")

    def _gate(self, campaign: CampaignSpec, unix_time: float,
              allowed: bool, reason: str) -> bool:
        self.tracer.event("pacing.gate", at=unix_time,
                          campaign=campaign.campaign_id,
                          allowed=allowed, reason=reason)
        return allowed

    def record_spend(self, campaign: CampaignSpec, unix_time: float,
                     amount_eur: float) -> None:
        """Charge a won impression against the campaign's budgets."""
        if amount_eur < 0:
            raise ValueError("spend must be non-negative")
        key = (campaign.campaign_id, self._day_index(campaign, unix_time))
        self._spent_today[key] = self._spent_today.get(key, 0.0) + amount_eur
        self.total_spend[campaign.campaign_id] += amount_eur
        self._spend_recorded.inc(amount_eur)
