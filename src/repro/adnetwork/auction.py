"""The per-request auction.

A simplified second-price auction over (our eligible campaigns + the
external-demand bid + the floor): highest CPM wins, pays the maximum of the
runner-up and the floor.  Exactly enough market microstructure for the
audit's questions — who won which pageview at what effective price.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.inventory import AdRequest, ExternalDemand
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class AuctionOutcome:
    """Result of one auction."""

    winner: Optional[CampaignSpec]   # None → external demand or no sale
    clearing_cpm: float
    external_bid_cpm: float
    contested: bool                  # an external bidder was present

    @property
    def our_win(self) -> bool:
        return self.winner is not None


class Auction:
    """Runs auctions between our campaigns and the external market."""

    def __init__(self, external: ExternalDemand,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.external = external
        self.tracer = tracer if tracer is not None else NULL_TRACER
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._auctions_run = metrics.counter(
            "auction.runs", help="auctions executed")
        self._bids_evaluated = metrics.counter(
            "auction.bids_evaluated",
            help="candidate campaign bids entering an auction")
        self._our_wins = metrics.counter(
            "auction.our_wins", help="auctions won by an audited campaign")
        self._external_wins = metrics.counter(
            "auction.external_wins",
            help="auctions lost to external demand or the floor")

    def run(self, request: AdRequest, candidates: Sequence[CampaignSpec],
            rng: random.Random) -> AuctionOutcome:
        """Auction one request among *candidates* (already deemed eligible).

        Ties between our campaigns break uniformly at random, mirroring
        rotation on equal bids.
        """
        outcome = self._decide(request, candidates, rng)
        self.tracer.event(
            "auction.decide", at=self.tracer.now,
            candidates=len(candidates),
            winner=outcome.winner.campaign_id if outcome.winner else "external",
            clearing_cpm=outcome.clearing_cpm,
            external_bid_cpm=outcome.external_bid_cpm,
            contested=outcome.contested)
        return outcome

    def _decide(self, request: AdRequest, candidates: Sequence[CampaignSpec],
                rng: random.Random) -> AuctionOutcome:
        self._auctions_run.inc()
        self._bids_evaluated.inc(len(candidates))
        external_bid = self.external.sample_bid(request, rng)
        best: Optional[CampaignSpec] = None
        if candidates:
            top_cpm = max(campaign.cpm_eur for campaign in candidates)
            leaders = [campaign for campaign in candidates
                       if campaign.cpm_eur == top_cpm]
            best = rng.choice(leaders)
        if best is None or best.cpm_eur < request.floor_cpm:
            self._external_wins.inc()
            return AuctionOutcome(winner=None,
                                  clearing_cpm=max(external_bid,
                                                   request.floor_cpm),
                                  external_bid_cpm=external_bid,
                                  contested=external_bid > 0.0)
        if external_bid >= best.cpm_eur:
            self._external_wins.inc()
            return AuctionOutcome(winner=None, clearing_cpm=external_bid,
                                  external_bid_cpm=external_bid,
                                  contested=True)
        runner_up = external_bid
        for campaign in candidates:
            if campaign is not best and campaign.cpm_eur > runner_up:
                runner_up = campaign.cpm_eur
        clearing = max(runner_up, request.floor_cpm)
        self._our_wins.inc()
        return AuctionOutcome(winner=best, clearing_cpm=min(clearing, best.cpm_eur),
                              external_bid_cpm=external_bid,
                              contested=external_bid > 0.0)
