"""The per-request auction.

A simplified second-price auction over (our eligible campaigns + the
external-demand bid + the floor): highest CPM wins, pays the maximum of the
runner-up and the floor.  Exactly enough market microstructure for the
audit's questions — who won which pageview at what effective price.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.inventory import AdRequest, ExternalDemand


@dataclass(frozen=True)
class AuctionOutcome:
    """Result of one auction."""

    winner: Optional[CampaignSpec]   # None → external demand or no sale
    clearing_cpm: float
    external_bid_cpm: float
    contested: bool                  # an external bidder was present

    @property
    def our_win(self) -> bool:
        return self.winner is not None


class Auction:
    """Runs auctions between our campaigns and the external market."""

    def __init__(self, external: ExternalDemand) -> None:
        self.external = external

    def run(self, request: AdRequest, candidates: Sequence[CampaignSpec],
            rng: random.Random) -> AuctionOutcome:
        """Auction one request among *candidates* (already deemed eligible).

        Ties between our campaigns break uniformly at random, mirroring
        rotation on equal bids.
        """
        external_bid = self.external.sample_bid(request, rng)
        best: Optional[CampaignSpec] = None
        if candidates:
            top_cpm = max(campaign.cpm_eur for campaign in candidates)
            leaders = [campaign for campaign in candidates
                       if campaign.cpm_eur == top_cpm]
            best = rng.choice(leaders)
        if best is None or best.cpm_eur < request.floor_cpm:
            return AuctionOutcome(winner=None,
                                  clearing_cpm=max(external_bid,
                                                   request.floor_cpm),
                                  external_bid_cpm=external_bid,
                                  contested=external_bid > 0.0)
        if external_bid >= best.cpm_eur:
            return AuctionOutcome(winner=None, clearing_cpm=external_bid,
                                  external_bid_cpm=external_bid,
                                  contested=True)
        runner_up = external_bid
        for campaign in candidates:
            if campaign is not best and campaign.cpm_eur > runner_up:
                runner_up = campaign.cpm_eur
        clearing = max(runner_up, request.floor_cpm)
        return AuctionOutcome(winner=best, clearing_cpm=min(clearing, best.cpm_eur),
                              external_bid_cpm=external_bid,
                              contested=external_bid > 0.0)
