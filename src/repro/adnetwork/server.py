"""The ad server: turns pageviews into delivered impressions.

Orchestrates the vendor-side pipeline for every pageview: geo resolution
(via the network's own IP database), the network's proprietary invalid-
traffic prefilter, budget pacing, targeting, the auction, and the exposure
model.  Emits :class:`DeliveredImpression` ground-truth records; what the
*advertiser* gets to see of them is decided later by
:mod:`repro.adnetwork.reporting` and, independently, by the beacon pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.adnetwork.auction import Auction
from repro.adnetwork.billing import BillingLedger
from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.inventory import ExternalDemand, make_request
from repro.adnetwork.matching import MatchDecision, MatchEngine
from repro.adnetwork.pacing import BudgetPacer
from repro.adnetwork.viewability import Exposure, ExposureModel
from repro.geo.ipdb import GeoIpDatabase
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.web.browsing import Pageview


@dataclass(frozen=True)
class DeliveredImpression:
    """Ground truth for one ad actually rendered on a page.

    This record belongs to the *simulation*, not to any observer: the
    vendor report projects one (lossy) view of it, the beacon dataset
    another.  The audit's job is to compare those two projections.
    """

    impression_id: int
    campaign: CampaignSpec
    pageview: Pageview
    exposure: Exposure
    match: MatchDecision
    clearing_cpm: float

    @property
    def price_eur(self) -> float:
        """What the advertiser was charged for this impression."""
        return self.clearing_cpm / 1000.0

    @property
    def publisher_domain(self) -> str:
        return self.pageview.publisher.domain


@dataclass(frozen=True)
class NetworkPolicy:
    """The vendor's (non-disclosed) operating policies.

    ``ivt_prefilter_rate`` is the share of invalid traffic the network's
    proprietary detection stops *before* the auction; the remainder is
    served and charged.  ``default_frequency_cap`` is None — the paper's
    finding (iv): AdWords applies no cap unless the advertiser sets one.
    """

    ivt_prefilter_rate: float = 0.35
    default_frequency_cap: Optional[int] = None
    #: Run-of-network expansion: broad eligibility ramps from the base rate
    #: toward the max rate as a campaign falls behind its budget schedule —
    #: but only to the extent its *matched* inventory is scarce.  Campaigns
    #: whose keyword/audience supply reaches ``matched_supply_ref`` of
    #: traffic never expand (Football); campaigns with almost no matched
    #: inventory (Research) are effectively run-of-network.
    broad_base_rate: float = 0.01
    broad_max_rate: float = 0.9
    matched_supply_ref: float = 0.08
    min_supply_samples: int = 200

    def __post_init__(self) -> None:
        if not 0.0 <= self.ivt_prefilter_rate <= 1.0:
            raise ValueError("ivt_prefilter_rate must be within [0, 1]")
        if self.default_frequency_cap is not None and self.default_frequency_cap < 1:
            raise ValueError("default_frequency_cap must be >= 1 when set")
        if not 0.0 <= self.broad_base_rate <= self.broad_max_rate <= 1.0:
            raise ValueError("need 0 <= broad_base_rate <= broad_max_rate <= 1")
        if not 0.0 < self.matched_supply_ref <= 1.0:
            raise ValueError("matched_supply_ref must be within (0, 1]")
        if self.min_supply_samples < 1:
            raise ValueError("min_supply_samples must be positive")


class AdServer:
    """Vendor-side delivery engine for a set of campaigns."""

    def __init__(self, campaigns: list[CampaignSpec], matcher: MatchEngine,
                 external: ExternalDemand, ipdb: GeoIpDatabase,
                 policy: NetworkPolicy | None = None,
                 exposure_model: ExposureModel | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.campaigns = list(campaigns)
        self.matcher = matcher
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.auction = Auction(external, metrics=self.metrics,
                               tracer=self.tracer)
        self.ipdb = ipdb
        self.policy = policy or NetworkPolicy()
        self.exposure_model = exposure_model or ExposureModel()
        self.pacer = BudgetPacer(self.campaigns, metrics=self.metrics,
                                 tracer=self.tracer)
        self.billing = BillingLedger(metrics=self.metrics,
                                     tracer=self.tracer)
        self._next_impression_id = 1
        self._frequency: dict[tuple[str, str, str], int] = {}
        self._supply_matched: dict[str, int] = {}
        self._supply_examined: dict[str, int] = {}
        self.prefiltered_pageviews = 0
        self.impressions: list[DeliveredImpression] = []
        self._pageviews_seen = self.metrics.counter(
            "adserver.pageviews", help="pageviews offered to the ad server")
        self._prefiltered = self.metrics.counter(
            "adserver.prefiltered",
            help="bot pageviews stopped by the IVT prefilter")
        self._deliveries = self.metrics.counter(
            "adserver.deliveries", help="impressions delivered and charged")

    # ------------------------------------------------------------------ #

    def resolve_country(self, pageview: Pageview) -> str:
        """The network's geo call for a visitor (IP database first)."""
        country = self.ipdb.country_of(pageview.ip)
        return country if country is not None else pageview.country

    def _effective_cap(self, campaign: CampaignSpec) -> Optional[int]:
        if campaign.frequency_cap is not None:
            return campaign.frequency_cap
        return self.policy.default_frequency_cap

    def _under_cap(self, campaign: CampaignSpec, pageview: Pageview) -> bool:
        cap = self._effective_cap(campaign)
        if cap is None:
            return True
        key = (campaign.campaign_id, pageview.ip, pageview.user_agent)
        return self._frequency.get(key, 0) < cap

    def _count_delivery(self, campaign: CampaignSpec, pageview: Pageview) -> None:
        key = (campaign.campaign_id, pageview.ip, pageview.user_agent)
        self._frequency[key] = self._frequency.get(key, 0) + 1

    def matched_supply(self, campaign_id: str) -> float:
        """Estimated fraction of traffic the campaign matches (C or B).

        Optimistic (= full reference supply) until enough pageviews have
        been examined to trust the estimate.
        """
        examined = self._supply_examined.get(campaign_id, 0)
        if examined < self.policy.min_supply_samples:
            return self.policy.matched_supply_ref
        return self._supply_matched.get(campaign_id, 0) / examined

    def broad_rate(self, campaign: CampaignSpec, now: float) -> float:
        """Run-of-network expansion pressure for *campaign* at *now*.

        Two factors multiply: *schedule pressure* (how far behind its
        budget delivery is) and *matched scarcity* (how short of the
        reference level the campaign's matched inventory runs).  A
        Football campaign with plentiful matched supply never expands, so
        its vendor report stays near-100 % contextual; a Research campaign
        with ~2 % matched supply is effectively run-of-network — exactly
        the two regimes Table 2 shows.
        """
        policy = self.policy
        elapsed_days = max(0.0, (now - campaign.start_unix) / 86_400.0)
        expected = campaign.daily_budget_eur * elapsed_days
        if expected <= 0.0:
            return policy.broad_base_rate
        spent = self.pacer.total_spend.get(campaign.campaign_id, 0.0)
        pressure = min(1.0, max(0.0, (expected - spent) / expected))
        supply = self.matched_supply(campaign.campaign_id)
        scarcity = min(1.0, max(0.0, 1.0 - supply / policy.matched_supply_ref))
        return (policy.broad_base_rate
                + pressure * scarcity
                * (policy.broad_max_rate - policy.broad_base_rate))

    # ------------------------------------------------------------------ #

    def serve(self, pageview: Pageview,
              rng: random.Random) -> Optional[DeliveredImpression]:
        """Process one pageview; returns the impression if *we* won it.

        The invalid-traffic prefilter models the network's proprietary
        behavioural bot detection: it stops a configured fraction of bot
        pageviews outright.  The bots that slip through are served and
        charged like humans — producing Table 4's data-center impressions.
        """
        self._pageviews_seen.inc()
        if pageview.is_bot and rng.random() < self.policy.ivt_prefilter_rate:
            self.prefiltered_pageviews += 1
            self._prefiltered.inc()
            return None
        now = pageview.timestamp
        country = self.resolve_country(pageview)
        candidates: list[CampaignSpec] = []
        decisions: dict[str, MatchDecision] = {}
        for campaign in self.campaigns:
            if not campaign.is_active(now):
                continue
            if not campaign.targets_country(country):
                continue
            if campaign.excludes_publisher(pageview.publisher.domain,
                                           pageview.publisher.is_anonymous):
                continue
            if not self._under_cap(campaign, pageview):
                continue
            decision = self.matcher.decide(campaign, pageview.publisher,
                                           pageview.interests, rng,
                                           broad_rate=self.broad_rate(campaign, now))
            campaign_id = campaign.campaign_id
            self._supply_examined[campaign_id] = \
                self._supply_examined.get(campaign_id, 0) + 1
            if decision.claimed_contextual:
                self._supply_matched[campaign_id] = \
                    self._supply_matched.get(campaign_id, 0) + 1
            if not decision.eligible:
                continue
            if not self.pacer.may_bid(campaign, now, rng):
                continue
            candidates.append(campaign)
            decisions[campaign_id] = decision
        if not candidates:
            return None
        request = make_request(
            pageview, price_level=self.auction.external.price_level(country))
        outcome = self.auction.run(request, candidates, rng)
        if outcome.winner is None:
            return None
        campaign = outcome.winner
        exposure = self.exposure_model.sample(pageview, rng)
        impression = DeliveredImpression(
            impression_id=self._next_impression_id,
            campaign=campaign,
            pageview=pageview,
            exposure=exposure,
            match=decisions[campaign.campaign_id],
            clearing_cpm=outcome.clearing_cpm,
        )
        self._next_impression_id += 1
        self.tracer.set_impression(impression.impression_id,
                                   campaign.campaign_id)
        self.tracer.event(
            "creative.serve", at=now,
            campaign=campaign.campaign_id, creative=campaign.creative_id,
            publisher=pageview.publisher.domain, country=country,
            reason=impression.match.reason.value,
            clearing_cpm=outcome.clearing_cpm)
        self.pacer.record_spend(campaign, now, impression.price_eur)
        self.billing.charge(campaign.campaign_id, impression.impression_id,
                            impression.price_eur, now)
        self._count_delivery(campaign, pageview)
        self.impressions.append(impression)
        self._deliveries.inc()
        return impression

    def run(self, pageviews, rng: random.Random) -> list[DeliveredImpression]:
        """Serve a whole pageview stream; returns the impressions we won."""
        first_index = len(self.impressions)
        for pageview in pageviews:
            self.serve(pageview, rng)
        return self.impressions[first_index:]

    def impressions_for(self, campaign_id: str) -> list[DeliveredImpression]:
        """All impressions delivered for one campaign."""
        return [impression for impression in self.impressions
                if impression.campaign.campaign_id == campaign_id]
