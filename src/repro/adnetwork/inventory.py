"""Ad requests and external demand.

Every pageview produces one ad request (the slot our campaigns can win).
The request carries the publisher's floor price; :class:`ExternalDemand`
models everyone else bidding on GDN — the premium advertisers who normally
take the popular inventory and leave the long tail as remnant.

This competition model is the engine behind Figure 2's counter-intuitive
result: on a top-ranked publisher the slot is usually taken by premium
demand regardless of whether our campaign bids 0.10 € or 0.30 € CPM, so a
30× CPM increase buys mid-tail volume, not popularity.  In low-competition
markets (the paper's Russia campaign at 0.01 €) premium demand rarely shows
up and even a minimal bid wins top sites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.web.browsing import Pageview


@dataclass(frozen=True)
class AdRequest:
    """One biddable slot on one pageview."""

    pageview: Pageview
    floor_cpm: float

    def __post_init__(self) -> None:
        if self.floor_cpm < 0:
            raise ValueError("floor_cpm must be non-negative")

    @property
    def floor_per_impression(self) -> float:
        return self.floor_cpm / 1000.0


@dataclass(frozen=True)
class ExternalDemandConfig:
    """Market-competition knobs, per country."""

    #: Multiplier on the publisher's ``premium_demand`` probability.
    competition_by_country: tuple[tuple[str, float], ...] = (
        ("ES", 0.90), ("US", 1.10), ("RU", 0.30))
    default_competition: float = 0.7
    #: External bids land between these multiples of the floor CPM.
    bid_over_floor_min: float = 1.8
    bid_over_floor_max: float = 10.0
    #: Inventory price level per market: the same publisher tier clears far
    #: cheaper in low-demand markets (why a 0.01 € CPM buys top-ranked
    #: Russian inventory but almost nothing in the US).
    price_level_by_country: tuple[tuple[str, float], ...] = (
        ("ES", 0.55), ("US", 1.00), ("RU", 0.03))
    default_price_level: float = 0.6

    def __post_init__(self) -> None:
        if self.default_competition < 0:
            raise ValueError("default_competition must be non-negative")
        if not 0 < self.bid_over_floor_min <= self.bid_over_floor_max:
            raise ValueError("invalid bid-over-floor range")
        if self.default_price_level <= 0:
            raise ValueError("default_price_level must be positive")


class ExternalDemand:
    """Samples the rest-of-market bid (if any) for an ad request."""

    def __init__(self, config: ExternalDemandConfig | None = None) -> None:
        self.config = config or ExternalDemandConfig()
        self._competition = dict(self.config.competition_by_country)
        self._price_level = dict(self.config.price_level_by_country)

    def competition_level(self, country: str) -> float:
        """Market pressure multiplier for a country."""
        return self._competition.get(country, self.config.default_competition)

    def price_level(self, country: str) -> float:
        """Floor-price multiplier for a country's inventory."""
        return self._price_level.get(country, self.config.default_price_level)

    def sample_bid(self, request: AdRequest, rng: random.Random) -> float:
        """External top bid in EUR CPM; 0.0 when no external bidder shows up.

        The probability an external bidder contests the slot is the
        publisher's ``premium_demand`` scaled by the country's market
        pressure.
        """
        publisher = request.pageview.publisher
        pressure = self.competition_level(request.pageview.country)
        if rng.random() >= publisher.premium_demand * pressure:
            return 0.0
        spread = rng.uniform(self.config.bid_over_floor_min,
                             self.config.bid_over_floor_max)
        return request.floor_cpm * spread


def make_request(pageview: Pageview, price_level: float = 1.0) -> AdRequest:
    """Build the biddable request for a pageview.

    *price_level* scales the publisher's floor to the visitor's market.
    """
    if price_level <= 0:
        raise ValueError("price_level must be positive")
    return AdRequest(pageview=pageview,
                     floor_cpm=pageview.publisher.floor_cpm * price_level)
