"""Vendor billing: charges and the silent fraud refunds.

The paper observed that AdWords initially charged for >1 000 impressions
delivered to data-center IPs in the Football campaigns and later issued a
refund "without details on the reasons".  The ledger reproduces both
halves: every won impression is charged at the auction's clearing price,
and a post-hoc pass refunds a fraction of the invalid impressions the
network's late detection catches — as an opaque lump sum per campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class Charge:
    """One billed impression."""

    campaign_id: str
    impression_id: int
    amount_eur: float
    timestamp: float

    def __post_init__(self) -> None:
        if self.amount_eur < 0:
            raise ValueError("amount_eur must be non-negative")


@dataclass(frozen=True)
class Refund:
    """An opaque lump-sum credit (no impression-level detail disclosed)."""

    campaign_id: str
    amount_eur: float
    covered_impressions: int

    def __post_init__(self) -> None:
        if self.amount_eur < 0:
            raise ValueError("amount_eur must be non-negative")
        if self.covered_impressions < 0:
            raise ValueError("covered_impressions must be non-negative")


class BillingLedger:
    """Per-campaign charge/refund accounting."""

    def __init__(self) -> None:
        self.charges: list[Charge] = []
        self.refunds: list[Refund] = []

    def charge(self, campaign_id: str, impression_id: int,
               amount_eur: float, timestamp: float) -> None:
        """Record one impression charge."""
        self.charges.append(Charge(campaign_id=campaign_id,
                                   impression_id=impression_id,
                                   amount_eur=amount_eur,
                                   timestamp=timestamp))

    def charged_total(self, campaign_id: str) -> float:
        """Gross spend billed to a campaign."""
        return sum(charge.amount_eur for charge in self.charges
                   if charge.campaign_id == campaign_id)

    def refunded_total(self, campaign_id: str) -> float:
        """Credits issued back to a campaign."""
        return sum(refund.amount_eur for refund in self.refunds
                   if refund.campaign_id == campaign_id)

    def net_total(self, campaign_id: str) -> float:
        """What the advertiser actually paid."""
        return self.charged_total(campaign_id) - self.refunded_total(campaign_id)

    def apply_fraud_refunds(self, impressions: Iterable, rng: random.Random,
                            detection_rate: float = 0.5) -> list[Refund]:
        """Post-flight invalid-traffic clawback.

        *impressions* are :class:`DeliveredImpression` records; the network
        re-scores them after the fact and refunds a *detection_rate*
        fraction of the ones that came from bot traffic.  The advertiser
        only sees the per-campaign lump sums that this method returns (and
        stores), never which impressions were involved — reproducing the
        paper's "we got a refund ... without details" experience.
        """
        if not 0.0 <= detection_rate <= 1.0:
            raise ValueError("detection_rate must be within [0, 1]")
        per_campaign: dict[str, tuple[float, int]] = {}
        for impression in impressions:
            if not impression.pageview.is_bot:
                continue
            if rng.random() >= detection_rate:
                continue
            amount, count = per_campaign.get(impression.campaign.campaign_id,
                                             (0.0, 0))
            per_campaign[impression.campaign.campaign_id] = (
                amount + impression.price_eur, count + 1)
        refunds = [Refund(campaign_id=campaign_id, amount_eur=amount,
                          covered_impressions=count)
                   for campaign_id, (amount, count) in sorted(per_campaign.items())]
        self.refunds.extend(refunds)
        return refunds
