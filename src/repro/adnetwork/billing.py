"""Vendor billing: charges and the silent fraud refunds.

The paper observed that AdWords initially charged for >1 000 impressions
delivered to data-center IPs in the Football campaigns and later issued a
refund "without details on the reasons".  The ledger reproduces both
halves: every won impression is charged at the auction's clearing price,
and a post-hoc pass refunds a fraction of the invalid impressions the
network's late detection catches — as an opaque lump sum per campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class Charge:
    """One billed impression."""

    campaign_id: str
    impression_id: int
    amount_eur: float
    timestamp: float

    def __post_init__(self) -> None:
        if self.amount_eur < 0:
            raise ValueError("amount_eur must be non-negative")


@dataclass(frozen=True)
class CampaignBillingSummary:
    """Per-campaign billing totals, the mergeable projection of a ledger.

    Shard runners ship these across process boundaries instead of their
    full charge lists; :meth:`BillingLedger.absorb_summary` folds them back
    into a ledger as per-campaign lump entries (deterministically, in call
    order), which keeps merged totals byte-identical between the serial
    and the parallel experiment paths.
    """

    campaign_id: str
    charged_eur: float
    refunded_eur: float
    refund_covered_impressions: int

    def __post_init__(self) -> None:
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        if self.charged_eur < 0 or self.refunded_eur < 0:
            raise ValueError("billing totals must be non-negative")
        if self.refund_covered_impressions < 0:
            raise ValueError("refund_covered_impressions must be non-negative")


@dataclass(frozen=True)
class Refund:
    """An opaque lump-sum credit (no impression-level detail disclosed)."""

    campaign_id: str
    amount_eur: float
    covered_impressions: int

    def __post_init__(self) -> None:
        if self.amount_eur < 0:
            raise ValueError("amount_eur must be non-negative")
        if self.covered_impressions < 0:
            raise ValueError("covered_impressions must be non-negative")


class BillingLedger:
    """Per-campaign charge/refund accounting."""

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.charges: list[Charge] = []
        self.refunds: list[Refund] = []
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._charges_recorded = metrics.counter(
            "billing.charges", help="impression charges recorded")
        self._charged_eur = metrics.counter(
            "billing.charged_eur", help="gross spend charged (EUR)")
        self._refunds_recorded = metrics.counter(
            "billing.refunds", help="refund entries recorded")
        self._refunded_eur = metrics.counter(
            "billing.refunded_eur", help="credits issued back (EUR)")

    def charge(self, campaign_id: str, impression_id: int,
               amount_eur: float, timestamp: float) -> None:
        """Record one impression charge."""
        self.charges.append(Charge(campaign_id=campaign_id,
                                   impression_id=impression_id,
                                   amount_eur=amount_eur,
                                   timestamp=timestamp))
        self._charges_recorded.inc()
        self._charged_eur.inc(amount_eur)
        self.tracer.event("billing.charge", at=timestamp,
                          campaign=campaign_id, amount_eur=amount_eur)

    def charged_total(self, campaign_id: str) -> float:
        """Gross spend billed to a campaign."""
        return sum(charge.amount_eur for charge in self.charges
                   if charge.campaign_id == campaign_id)

    def refunded_total(self, campaign_id: str) -> float:
        """Credits issued back to a campaign."""
        return sum(refund.amount_eur for refund in self.refunds
                   if refund.campaign_id == campaign_id)

    def net_total(self, campaign_id: str) -> float:
        """What the advertiser actually paid."""
        return self.charged_total(campaign_id) - self.refunded_total(campaign_id)

    def summaries(self) -> dict[str, CampaignBillingSummary]:
        """Per-campaign totals, keyed and ordered by sorted campaign id."""
        charged: dict[str, float] = {}
        for charge in self.charges:
            charged[charge.campaign_id] = \
                charged.get(charge.campaign_id, 0.0) + charge.amount_eur
        refunded: dict[str, float] = {}
        covered: dict[str, int] = {}
        for refund in self.refunds:
            refunded[refund.campaign_id] = \
                refunded.get(refund.campaign_id, 0.0) + refund.amount_eur
            covered[refund.campaign_id] = \
                covered.get(refund.campaign_id, 0) + refund.covered_impressions
        return {
            campaign_id: CampaignBillingSummary(
                campaign_id=campaign_id,
                charged_eur=charged.get(campaign_id, 0.0),
                refunded_eur=refunded.get(campaign_id, 0.0),
                refund_covered_impressions=covered.get(campaign_id, 0))
            for campaign_id in sorted(charged.keys() | refunded.keys())
        }

    def absorb_summary(self, summary: CampaignBillingSummary) -> None:
        """Fold another ledger's per-campaign totals into this one.

        The detail of the source ledger is collapsed into one lump charge
        and one lump refund per campaign — all the advertiser-visible query
        surface (``charged_total``/``refunded_total``/``net_total``) needs.
        """
        if summary.charged_eur > 0:
            self.charges.append(Charge(
                campaign_id=summary.campaign_id, impression_id=0,
                amount_eur=summary.charged_eur, timestamp=0.0))
            self._charges_recorded.inc()
            self._charged_eur.inc(summary.charged_eur)
        if summary.refunded_eur > 0 or summary.refund_covered_impressions > 0:
            self.refunds.append(Refund(
                campaign_id=summary.campaign_id,
                amount_eur=summary.refunded_eur,
                covered_impressions=summary.refund_covered_impressions))
            self._refunds_recorded.inc()
            self._refunded_eur.inc(summary.refunded_eur)

    def apply_fraud_refunds(self, impressions: Iterable, rng: random.Random,
                            detection_rate: float = 0.5) -> list[Refund]:
        """Post-flight invalid-traffic clawback.

        *impressions* are :class:`DeliveredImpression` records; the network
        re-scores them after the fact and refunds a *detection_rate*
        fraction of the ones that came from bot traffic.  The advertiser
        only sees the per-campaign lump sums that this method returns (and
        stores), never which impressions were involved — reproducing the
        paper's "we got a refund ... without details" experience.
        """
        if not 0.0 <= detection_rate <= 1.0:
            raise ValueError("detection_rate must be within [0, 1]")
        per_campaign: dict[str, tuple[float, int]] = {}
        for impression in impressions:
            if not impression.pageview.is_bot:
                continue
            if rng.random() >= detection_rate:
                continue
            amount, count = per_campaign.get(impression.campaign.campaign_id,
                                             (0.0, 0))
            per_campaign[impression.campaign.campaign_id] = (
                amount + impression.price_eur, count + 1)
        refunds = [Refund(campaign_id=campaign_id, amount_eur=amount,
                          covered_impressions=count)
                   for campaign_id, (amount, count) in sorted(per_campaign.items())]
        self.refunds.extend(refunds)
        for refund in refunds:
            self._refunds_recorded.inc()
            self._refunded_eur.inc(refund.amount_eur)
        return refunds
