"""GDN-like ad network.

The vendor under audit: campaign configuration, contextual/behavioural
matching, a CPM auction against external premium demand, budget pacing,
an exposure/viewability model, delivery, vendor-side reporting (with the
policies the paper reverse-engineers: viewable-only placement rows,
``anonymous.google`` aggregation, undisclosed contextual criteria, no
default frequency cap, silent fraud refunds) and billing.
"""

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.matching import MatchEngine, MatchReason, MatchDecision
from repro.adnetwork.inventory import AdRequest, ExternalDemand
from repro.adnetwork.auction import Auction, AuctionOutcome
from repro.adnetwork.pacing import BudgetPacer
from repro.adnetwork.viewability import ExposureModel, Exposure
from repro.adnetwork.server import AdServer, DeliveredImpression, NetworkPolicy
from repro.adnetwork.reporting import (
    VendorReporter,
    VendorReport,
    PlacementRow,
    ReportAggregate,
    merge_aggregates,
)
from repro.adnetwork.billing import (
    BillingLedger,
    CampaignBillingSummary,
    Charge,
    Refund,
)
from repro.adnetwork.conversions import (
    ConversionConfig,
    ConversionEvent,
    ConversionSimulator,
)

__all__ = [
    "CampaignSpec",
    "MatchEngine",
    "MatchReason",
    "MatchDecision",
    "AdRequest",
    "ExternalDemand",
    "Auction",
    "AuctionOutcome",
    "BudgetPacer",
    "ExposureModel",
    "Exposure",
    "AdServer",
    "DeliveredImpression",
    "NetworkPolicy",
    "VendorReporter",
    "VendorReport",
    "PlacementRow",
    "ReportAggregate",
    "merge_aggregates",
    "BillingLedger",
    "CampaignBillingSummary",
    "Charge",
    "Refund",
    "ConversionConfig",
    "ConversionEvent",
    "ConversionSimulator",
]
