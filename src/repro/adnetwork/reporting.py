"""Vendor-side campaign reporting — the artifact under audit.

Builds the report an advertiser downloads from the vendor console.  The
report embeds the policies the paper reverse-engineers:

* **Placement rows cover only vendor-viewable impressions.**  A publisher
  that served ads nobody (per the network's measurement) saw never appears
  — the paper's explanation for the 57 % of publishers missing from
  AdWords reports (Figure 1).
* **Anonymous inventory is aggregated** under the ``anonymous.google``
  placement, hiding those publishers' identities.
* **The contextual column uses the network's own criteria**, including the
  undisclosed behavioural signal, so it overstates thematic relevance
  relative to an auditor who can only inspect publisher content (Table 2).
* **Totals count every charged impression**, viewable or not — totals and
  placement rows deliberately do not add up, as in the real console.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adnetwork.server import DeliveredImpression
from repro.util.stats import Fraction2

#: The aggregated placement name Google uses for anonymous sellers.
ANONYMOUS_PLACEMENT = "anonymous.google"


@dataclass(frozen=True)
class PlacementRow:
    """One row of the placements report."""

    placement: str
    impressions: int

    def __post_init__(self) -> None:
        if not self.placement:
            raise ValueError("placement must be non-empty")
        if self.impressions < 1:
            raise ValueError("a placement row needs at least one impression")

    @property
    def is_anonymous(self) -> bool:
        return self.placement == ANONYMOUS_PLACEMENT


@dataclass(frozen=True)
class ReportAggregate:
    """The mergeable counts behind one campaign's vendor report.

    A shard runner computes one of these per campaign over its own slice
    of delivered impressions; :func:`merge_aggregates` sums any number of
    them, and :meth:`VendorReporter.build` projects the merged counts into
    the :class:`VendorReport` the advertiser sees.  Integer counts merge
    exactly, so the merged report is byte-identical however the delivery
    stream was partitioned.
    """

    campaign_id: str
    total_impressions: int
    contextual_impressions: int
    #: (placement name, impression count), sorted by placement name.
    placement_counts: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        if self.total_impressions < 0 or self.contextual_impressions < 0:
            raise ValueError("impression counts must be non-negative")


def merge_aggregates(aggregates: "list[ReportAggregate]",
                     campaign_id: str) -> ReportAggregate:
    """Sum per-shard aggregates for one campaign into a single aggregate."""
    total = 0
    contextual = 0
    placements: dict[str, int] = {}
    for aggregate in aggregates:
        if aggregate.campaign_id != campaign_id:
            raise ValueError(
                f"cannot merge aggregate for {aggregate.campaign_id!r} "
                f"into {campaign_id!r}")
        total += aggregate.total_impressions
        contextual += aggregate.contextual_impressions
        for name, count in aggregate.placement_counts:
            placements[name] = placements.get(name, 0) + count
    return ReportAggregate(
        campaign_id=campaign_id,
        total_impressions=total,
        contextual_impressions=contextual,
        placement_counts=tuple(sorted(placements.items())),
    )


@dataclass(frozen=True)
class VendorReport:
    """Everything the vendor console shows the advertiser for one campaign."""

    campaign_id: str
    total_impressions: int
    placements: tuple[PlacementRow, ...]
    contextual: Fraction2
    charged_eur: float
    refunded_eur: float

    @property
    def reported_publishers(self) -> set[str]:
        """Named publisher domains in the placements report (the anonymous
        aggregate is not a publisher identity and is excluded)."""
        return {row.placement for row in self.placements
                if not row.is_anonymous}

    @property
    def anonymous_impressions(self) -> int:
        """Impressions filed under ``anonymous.google``."""
        return sum(row.impressions for row in self.placements
                   if row.is_anonymous)

    @property
    def placement_impressions(self) -> int:
        """Impressions visible in placement rows (≤ total_impressions)."""
        return sum(row.impressions for row in self.placements)


class VendorReporter:
    """Projects ground-truth impressions into vendor reports."""

    def __init__(self, viewable_only_placements: bool = True) -> None:
        #: The policy under test in ablation A1: set False to make the
        #: vendor disclose every delivered placement.
        self.viewable_only_placements = viewable_only_placements

    def aggregate(self, campaign_id: str,
                  impressions: list[DeliveredImpression]) -> ReportAggregate:
        """Count one campaign's impressions into a mergeable aggregate.

        Applies this reporter's placement-disclosure policy, so aggregates
        from different shards merge into exactly the counts a single pass
        over the concatenated impression list would have produced.
        """
        for impression in impressions:
            if impression.campaign.campaign_id != campaign_id:
                raise ValueError(
                    f"impression {impression.impression_id} belongs to "
                    f"{impression.campaign.campaign_id!r}, not {campaign_id!r}")
        placement_counts: dict[str, int] = {}
        contextual_count = 0
        for impression in impressions:
            if impression.match.claimed_contextual:
                contextual_count += 1
            if self.viewable_only_placements and \
                    not impression.exposure.vendor_viewable:
                continue
            publisher = impression.pageview.publisher
            name = ANONYMOUS_PLACEMENT if publisher.is_anonymous \
                else publisher.domain
            placement_counts[name] = placement_counts.get(name, 0) + 1
        return ReportAggregate(
            campaign_id=campaign_id,
            total_impressions=len(impressions),
            contextual_impressions=contextual_count,
            placement_counts=tuple(sorted(placement_counts.items())),
        )

    @staticmethod
    def build(aggregate: ReportAggregate,
              charged_eur: float = 0.0,
              refunded_eur: float = 0.0) -> VendorReport:
        """Project an aggregate (possibly merged) into a console report."""
        placements = tuple(PlacementRow(placement=name, impressions=count)
                           for name, count in aggregate.placement_counts)
        return VendorReport(
            campaign_id=aggregate.campaign_id,
            total_impressions=aggregate.total_impressions,
            placements=placements,
            contextual=Fraction2(aggregate.contextual_impressions,
                                 aggregate.total_impressions)
            if aggregate.total_impressions else Fraction2(0, 0),
            charged_eur=charged_eur,
            refunded_eur=refunded_eur,
        )

    def report(self, campaign_id: str,
               impressions: list[DeliveredImpression],
               charged_eur: float = 0.0,
               refunded_eur: float = 0.0) -> VendorReport:
        """Build the console report for one campaign."""
        return self.build(self.aggregate(campaign_id, impressions),
                          charged_eur=charged_eur,
                          refunded_eur=refunded_eur)
