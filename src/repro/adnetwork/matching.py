"""The network's targeting engine.

AdWords' support pages say keyword campaigns follow a *contextual*
strategy, but "may use other factors to determine if a publisher is
contextually relevant ... such as the recent browsing history of a user"
(paper §4.2, reference [1]).  This module models exactly that undisclosed
behaviour:

* ``CONTEXTUAL`` — the network's own page classifier relates the publisher
  to the campaign keywords.  Deliberately *broader* than the auditor's
  criterion: any publisher topic within the same vertical counts.
* ``BEHAVIOURAL`` — the visitor's recent interests match the campaign; the
  network still files the impression under its contextual strategy.
* ``BROAD`` — remnant/run-of-network extension when spend pressure exists;
  never claimed as contextual.

The *auditor's* stricter criterion (literal keyword match or LCH-similar
topics) lives in :mod:`repro.audit.context`; the gap between these two
judgments is Table 2.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.adnetwork.campaign import CampaignSpec
from repro.taxonomy.lexicon import Lexicon
from repro.taxonomy.tree import TaxonomyTree
from repro.util import hotpath
from repro.web.publisher import Publisher


class MatchReason(enum.Enum):
    """Why the network considered a campaign eligible for a pageview."""

    CONTEXTUAL = "contextual"
    BEHAVIOURAL = "behavioural"
    BROAD = "broad"
    NONE = "none"


@dataclass(frozen=True)
class MatchDecision:
    """Eligibility verdict for (campaign, pageview)."""

    eligible: bool
    reason: MatchReason

    @property
    def claimed_contextual(self) -> bool:
        """Would the vendor's report call this a contextual placement?

        Behavioural placements are *also* claimed: the network files
        recent-browsing-history matches under its contextual strategy —
        the non-disclosed criterion the paper highlights.
        """
        return self.reason in (MatchReason.CONTEXTUAL, MatchReason.BEHAVIOURAL)


class MatchEngine:
    """Eligibility decisions for every (campaign, pageview) pair.

    Parameters
    ----------
    broad_match_rate:
        Probability that an otherwise-unmatched pageview is still eligible
        through run-of-network extension.  This is what lets low-inventory
        campaigns (research keywords in Spain) spend their budget at all —
        and why so few of their impressions are contextually meaningful.
    vertical_radius_edges:
        How far (in taxonomy edges) the network's page classifier is willing
        to stretch a "contextual" call.  The default of 2 admits any topic
        in the same sub-vertical, which is looser than the auditor's
        criterion and inflates the vendor-reported numbers of Table 2.
    """

    def __init__(self, lexicon: Lexicon, broad_match_rate: float = 0.02,
                 behavioural_rate: float = 0.5,
                 vertical_radius_edges: int = 1) -> None:
        if not 0.0 <= broad_match_rate <= 1.0:
            raise ValueError("broad_match_rate must be within [0, 1]")
        if not 0.0 <= behavioural_rate <= 1.0:
            raise ValueError("behavioural_rate must be within [0, 1]")
        if vertical_radius_edges < 0:
            raise ValueError("vertical_radius_edges must be non-negative")
        self.lexicon = lexicon
        self.tree: TaxonomyTree = lexicon.tree
        self.broad_match_rate = broad_match_rate
        #: Probability the behavioural signal is *available* for a matching
        #: visitor — the network's interest profiles do not cover everyone.
        self.behavioural_rate = behavioural_rate
        self.vertical_radius_edges = vertical_radius_edges
        self._contextual_cache: dict[tuple[str, str], bool] = {}
        #: (campaign_id, radius) → union of the campaign topics'
        #: taxonomy neighbourhoods; built from the tree-level
        #: ``nodes_within`` memo that the context audit shares.
        self._neighborhoods: dict[tuple[str, int], frozenset[str]] = {}

    def campaign_topics(self, campaign: CampaignSpec) -> tuple[str, ...]:
        """The campaign keywords resolved to taxonomy nodes.

        Resolution is memoised inside the shared :class:`Lexicon`, so the
        matching engine and the context audit resolve each campaign's
        keyword list exactly once between them.
        """
        return self.lexicon.campaign_topics(campaign.campaign_id,
                                            campaign.keywords)

    def _campaign_neighborhood(self, campaign: CampaignSpec,
                               radius: int) -> frozenset[str]:
        """Union of ``nodes_within(topic, radius)`` over campaign topics."""
        key = (campaign.campaign_id, radius)
        cached = self._neighborhoods.get(key)
        if cached is None:
            nodes: set[str] = set()
            for topic in self.campaign_topics(campaign):
                nodes.update(self.tree.nodes_within(topic, radius))
            cached = frozenset(nodes)
            self._neighborhoods[key] = cached
        return cached

    def contextual_match(self, campaign: CampaignSpec,
                         publisher: Publisher) -> bool:
        """The *network's* page-classifier verdict (loose, cached)."""
        key = (campaign.campaign_id, publisher.domain)
        if key not in self._contextual_cache:
            self._contextual_cache[key] = self._contextual(campaign, publisher)
        return self._contextual_cache[key]

    def _contextual_reference(self, campaign: CampaignSpec,
                              publisher: Publisher) -> bool:
        """Reference nested-loop classifier (the equivalence oracle)."""
        if any(publisher.matches_keyword(keyword)
               for keyword in campaign.keywords):
            return True
        campaign_topics = self.campaign_topics(campaign)
        for campaign_topic in campaign_topics:
            for publisher_topic in publisher.topics:
                if self.tree.path_length_uncached(
                        campaign_topic,
                        publisher_topic) <= self.vertical_radius_edges:
                    return True
        return False

    def _contextual(self, campaign: CampaignSpec, publisher: Publisher) -> bool:
        if hotpath._REFERENCE:
            return self._contextual_reference(campaign, publisher)
        if any(publisher.matches_keyword(keyword)
               for keyword in campaign.keywords):
            return True
        # path_length(t, p) <= radius for some campaign topic t iff p is
        # in the precomputed neighbourhood union — one set probe per
        # publisher topic instead of a nested path computation.
        neighborhood = self._campaign_neighborhood(
            campaign, self.vertical_radius_edges)
        return not neighborhood.isdisjoint(publisher.topics)

    def behavioural_match_reference(self, campaign: CampaignSpec,
                                    interests: tuple[str, ...]) -> bool:
        """Reference nested-loop profile matcher (the equivalence oracle)."""
        campaign_topics = self.campaign_topics(campaign)
        if not campaign_topics or not interests:
            return False
        interest_set = set(interests)
        for topic in campaign_topics:
            if topic in interest_set:
                return True
            # Interests one edge away (e.g. 'la-liga' vs keyword 'football')
            # also trip the behavioural signal.
            for interest in interest_set:
                if self.tree.path_length_uncached(topic, interest) <= 1:
                    return True
        return False

    def behavioural_match(self, campaign: CampaignSpec,
                          interests: tuple[str, ...]) -> bool:
        """Does the visitor's recent browsing profile match the campaign?

        An interest matches when it is a campaign topic or one taxonomy
        edge away from one, i.e. exactly when it falls in the campaign's
        radius-1 neighbourhood — a single set intersection per call.
        """
        if hotpath._REFERENCE:
            return self.behavioural_match_reference(campaign, interests)
        if not interests or not self.campaign_topics(campaign):
            return False
        return not self._campaign_neighborhood(campaign, 1).isdisjoint(interests)

    def decide(self, campaign: CampaignSpec, publisher: Publisher,
               interests: tuple[str, ...], rng: random.Random,
               broad_rate: float | None = None) -> MatchDecision:
        """Full eligibility decision for one pageview.

        *broad_rate* overrides the engine default; the ad server raises it
        dynamically when a campaign is underdelivering against its budget
        (run-of-network expansion) — which is how keyword campaigns with
        almost no matching inventory still manage to spend.
        """
        if campaign.keywords and self.contextual_match(campaign, publisher):
            return MatchDecision(eligible=True, reason=MatchReason.CONTEXTUAL)
        if self.behavioural_match(campaign, interests) \
                and rng.random() < self.behavioural_rate:
            return MatchDecision(eligible=True, reason=MatchReason.BEHAVIOURAL)
        rate = self.broad_match_rate if broad_rate is None else broad_rate
        if rng.random() < rate:
            return MatchDecision(eligible=True, reason=MatchReason.BROAD)
        return MatchDecision(eligible=False, reason=MatchReason.NONE)
