"""Post-click outcomes: landings and conversions.

The paper leaves conversion analysis as future work; this module
implements it.  A click on the creative opens the advertiser's landing
page; a fraction of *human* visitors convert (book the seat, buy the
product) after some deliberation, while click-fraud bots click and vanish
— which is exactly the asymmetry the conversion audit later exploits.

Conversions are first-party data: the advertiser's own site records them,
no vendor or beacon is involved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.adnetwork.server import DeliveredImpression
from repro.util.hashing import anonymize_ip


@dataclass(frozen=True)
class ConversionEvent:
    """One conversion recorded on the advertiser's site.

    Carries the visitor's raw IP/UA until :meth:`anonymized` is applied
    with the same salt the impression dataset uses, after which the
    ``ip_token`` links conversions to beacon-logged users.
    """

    campaign_id: str
    timestamp: float
    ip: str
    user_agent: str
    value_eur: float
    ip_token: str = ""

    def __post_init__(self) -> None:
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        if self.value_eur <= 0:
            raise ValueError("value_eur must be positive")
        if not self.ip and not self.ip_token:
            raise ValueError("conversion needs an IP or a token")

    @property
    def user_key(self) -> str:
        """Same identity scheme as the impression store: IP ⊕ User-Agent."""
        return f"{self.ip_token or self.ip}\x1f{self.user_agent}"

    def anonymized(self, salt: str) -> "ConversionEvent":
        """Replace the raw IP with its salted token (idempotent)."""
        if self.ip_token:
            return self
        return replace(self, ip_token=anonymize_ip(self.ip, salt=salt),
                       ip="")


@dataclass(frozen=True)
class ConversionConfig:
    """Behavioural knobs of the landing funnel."""

    human_conversion_rate: float = 0.05
    bot_conversion_rate: float = 0.0
    deliberation_min_seconds: float = 40.0
    deliberation_max_seconds: float = 900.0
    order_value_min_eur: float = 9.0
    order_value_max_eur: float = 240.0

    def __post_init__(self) -> None:
        for name in ("human_conversion_rate", "bot_conversion_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if not 0 < self.deliberation_min_seconds <= self.deliberation_max_seconds:
            raise ValueError("invalid deliberation range")
        if not 0 < self.order_value_min_eur <= self.order_value_max_eur:
            raise ValueError("invalid order-value range")


class ConversionSimulator:
    """Samples conversions from clicked impressions."""

    def __init__(self, config: ConversionConfig | None = None) -> None:
        self.config = config or ConversionConfig()
        self.clicks_seen = 0
        self.conversions = 0

    def simulate(self, impression: DeliveredImpression, clicks: int,
                 rng: random.Random) -> Optional[ConversionEvent]:
        """At most one conversion per clicked impression.

        *clicks* is what the beacon observed on the creative; zero clicks
        can never convert (display attribution here is click-through only).
        """
        if clicks <= 0:
            return None
        self.clicks_seen += 1
        config = self.config
        rate = config.bot_conversion_rate if impression.pageview.is_bot \
            else config.human_conversion_rate
        if rng.random() >= rate:
            return None
        self.conversions += 1
        deliberation = rng.uniform(config.deliberation_min_seconds,
                                   config.deliberation_max_seconds)
        return ConversionEvent(
            campaign_id=impression.campaign.campaign_id,
            timestamp=impression.pageview.timestamp + deliberation,
            ip=impression.pageview.ip,
            user_agent=impression.pageview.user_agent,
            value_eur=round(rng.uniform(config.order_value_min_eur,
                                        config.order_value_max_eur), 2),
        )
